"""Point-to-point directed links.

A :class:`DirectedLink` models one direction of a (bi-directional) channel
between two processes: a transmission server that serialises messages onto
the wire one at a time (per-message overhead plus a per-byte cost), followed
by a propagation delay equal to the one-way region-to-region latency plus
optional jitter. Links may bound their transmit queue; when full, messages
are dropped — mirroring the paper's note that its implementation discards
messages when inter-routine queues fill up.

Message loss: a per-link ``loss_hook`` (see :mod:`repro.net.faults`) is
consulted at delivery time; if it returns True the message is silently
discarded, reproducing the paper's receiver-side fault injection (§4.5).

Single-event hops
-----------------

With a virtual-time transmission server the serialisation completion of an
accepted message is known at submit time, so a jitter-free link (the
default configuration) schedules exactly **one** kernel event per hop — the
propagation arrival at ``completion + latency`` — plus a pacing event at
``completion`` only when the sender asked for ``on_wire``. Jittered links
keep the legacy two-event path (serialisation completion, then arrival) so
the ``link-jitter`` RNG is drawn at exactly the same instants and in the
same order as before. :meth:`degrade` converts not-yet-serialised fast-path
messages back onto the legacy path so they observe the post-degradation
latency/jitter, preserving the documented "only messages serialised after
the call see the new parameters" contract.
"""

from collections import deque

from repro.sim.server import make_server


class LinkConfig:
    """Transmission cost model and queue bound shared by links.

    Parameters
    ----------
    per_message_s:
        Fixed serialisation overhead per message (seconds).
    per_byte_s:
        Wire time per byte (seconds); 8e-9 corresponds to 1 Gbps.
    queue_capacity:
        Maximum queued messages per link direction; ``None`` = unbounded.
    jitter_s:
        Half-width of uniform propagation jitter (seconds); 0 disables.
    """

    __slots__ = ("per_message_s", "per_byte_s", "queue_capacity", "jitter_s")

    def __init__(self, per_message_s=60e-6, per_byte_s=8e-9,
                 queue_capacity=20_000, jitter_s=0.0):
        self.per_message_s = per_message_s
        self.per_byte_s = per_byte_s
        self.queue_capacity = queue_capacity
        self.jitter_s = jitter_s


class LinkStats:
    """Per-link counters."""

    __slots__ = ("sent", "dropped_queue", "dropped_loss", "delivered", "bytes_sent")

    def __init__(self):
        self.sent = 0
        self.dropped_queue = 0
        self.dropped_loss = 0
        self.delivered = 0
        self.bytes_sent = 0


class DirectedLink:
    """One direction of a channel: src -> dst."""

    __slots__ = (
        "sim", "src", "dst", "latency_s", "config", "_stats",
        "_server", "_submit_timed", "_submit_fast", "_submit_chain",
        "_in_flight", "_jitter_rng", "_deliver", "_arrive_cb",
        "loss_hook", "_base_latency_s", "_base_config", "_base_jitter_rng",
    )

    #: Drain fast-path counters once this many transmissions accumulate
    #: (reads through :attr:`stats` always drain; this bound only caps the
    #: deque between reads).
    _DRAIN_BATCH = 256

    def __init__(self, sim, src, dst, latency_s, config, deliver, loss_hook=None):
        """
        Parameters
        ----------
        deliver:
            Callback ``deliver(src_id, payload)`` invoked at the receiver
            when the message arrives (after loss injection).
        loss_hook:
            Optional ``loss_hook(dst_id) -> bool``; True drops the message.
        """
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency_s = latency_s
        self.config = config
        self._stats = LinkStats()
        self._server = make_server(sim, capacity=config.queue_capacity,
                                   on_drop=self._on_queue_drop)
        # The fast path needs the completion time at submit; a server
        # without submit_timed (the legacy reference) disables it.
        self._submit_timed = getattr(self._server, "submit_timed", None)
        self._submit_fast = getattr(self._server, "submit_fast", None)
        self._submit_chain = getattr(self._server, "submit_chain", None)
        # One bound method reused for every hop: creating `self._arrive`
        # per transmission is a measurable share of hot-path allocation.
        self._arrive_cb = self._arrive
        #: Fast-path messages not yet drained into ``stats.sent``, as
        #: (serialisation_completion, size_bytes, payload, arrive_event)
        #: in completion order.
        self._in_flight = deque()
        self._jitter_rng = sim.rng("link-jitter") if config.jitter_s > 0 else None
        self._deliver = deliver
        self.loss_hook = loss_hook
        # Pristine parameters, restored when a fault-induced degradation ends.
        self._base_latency_s = latency_s
        self._base_config = config
        self._base_jitter_rng = self._jitter_rng

    @property
    def stats(self):
        """Counters, drained to the current instant before reading.

        Fast-path messages count as ``sent`` once their serialisation
        completion has passed — the same instant the legacy path's
        completion event incremented the counter.
        """
        self._drain_sent(self.sim.now)
        return self._stats

    def degrade(self, latency_factor=1.0, extra_jitter_s=0.0, jitter_rng=None):
        """Degrade propagation relative to the link's pristine parameters.

        Multiplies the one-way latency by ``latency_factor`` and widens the
        uniform jitter by ``extra_jitter_s`` (drawn from ``jitter_rng``).
        Neutral arguments (factor 1, no extra jitter) restore the link.
        Queued and in-flight messages are unaffected; only messages
        serialised after the call see the new parameters.
        """
        base = self._base_config
        self.latency_s = self._base_latency_s * latency_factor
        if extra_jitter_s > 0:
            self.config = LinkConfig(base.per_message_s, base.per_byte_s,
                                     base.queue_capacity,
                                     base.jitter_s + extra_jitter_s)
            self._jitter_rng = jitter_rng
        else:
            self.config = base
            self._jitter_rng = self._base_jitter_rng
        self._requeue_in_flight()

    def restore(self):
        """Undo any degradation (see :meth:`degrade`)."""
        self.degrade()

    @property
    def fast_path(self):
        """Whether :meth:`transmit_timed` will take the single-event hop."""
        return self._submit_fast is not None and self._jitter_rng is None

    @property
    def busy(self):
        return self._server.busy

    @property
    def queue_length(self):
        return self._server.queue_length

    def transmit_timed(self, payload):
        """Fast-path transmit that returns the serialisation completion.

        Senders that pace themselves arithmetically (tracking when the
        link frees instead of asking for an ``on_wire`` event) call this
        first: when the single-event hop applies, the payload is committed
        to the wire, exactly one arrival event is scheduled, and the
        instant the link frees is returned. Returns ``None`` when the fast
        path is unavailable (jittered link, or an event-per-job legacy
        server) — the caller must then fall back to :meth:`transmit`.

        Callers are expected to transmit only while the link is idle, so a
        queue-full drop cannot normally occur here; if it does, the drop
        is counted and the current time is returned (the link is free).
        """
        submit_fast = self._submit_fast
        if submit_fast is None or self._jitter_rng is not None:
            return None
        config = self.config
        service = config.per_message_s + payload.size_bytes * config.per_byte_s
        completion = submit_fast(service, payload)
        sim = self.sim
        if completion is None:
            return sim.now
        # completion >= now by construction, so the arrival can take the
        # kernel's unchecked hot path.
        event = sim.push_event(completion + self.latency_s,
                               self._arrive_cb, (payload,))
        self._in_flight.append((completion, payload.size_bytes,
                                payload, event))
        return completion

    def transmit_chained(self, payload):
        """Chain a payload behind the link's committed work; fast path only.

        The batched gossip pump calls this for every message of a
        validated round in one go: each serialisation is appended to the
        transmission server's busy tail (:meth:`FifoServer.submit_chain`)
        and exactly one arrival event is armed at its arithmetic
        completion — the same ``(time, seq)`` positions a per-message pump
        paced by wake-up events would have produced. Callers must check
        :attr:`fast_path` first; chains never drop (the sender paces
        itself, so chain entries model pacing, not queue contention).
        Returns the serialisation completion.
        """
        config = self.config
        service = config.per_message_s + payload.size_bytes * config.per_byte_s
        completion = self._submit_chain(service)
        event = self.sim.push_event(completion + self.latency_s,
                                    self._arrive_cb, (payload,))
        self._in_flight.append((completion, payload.size_bytes,
                                payload, event))
        return completion

    def abort_pending_chain(self):
        """Withdraw chained messages that have not started serialising.

        Called when the sending node crashes mid-round: the reference
        pump would simply never have transmitted the rest of the round.
        The message in service stays — it is on the wire and arrives, as
        it does in the reference — while queued chain entries are removed
        from the transmission server and their pre-armed arrival events
        cancelled. Entries already converted to the legacy path by
        :meth:`degrade` are no longer in ``_in_flight`` and are left
        alone. Returns the number of withdrawn messages.
        """
        server = self._server
        abort = getattr(server, "abort_queued", None)
        if abort is None or not self._in_flight:
            # No abort hook (legacy server), or a mid-round degrade moved
            # the chain onto the legacy serialisation path (emptying
            # ``_in_flight``): those messages' serialisation events are
            # armed and will fire, so their server jobs must stand.
            return 0
        removed, busy_until = abort(self.sim.now)
        if removed:
            in_flight = self._in_flight
            sim = self.sim
            while in_flight and in_flight[-1][0] > busy_until:
                sim.cancel(in_flight.pop()[3])
        return removed

    def transmit(self, payload, on_wire=None):
        """Send a payload towards ``dst``.

        ``on_wire`` (optional, zero-arg) fires when the message finishes
        serialising — i.e. when the link is free for the next message —
        which lets per-peer gossip senders pace themselves.
        Returns False if the transmit queue was full.
        """
        config = self.config
        service = config.per_message_s + payload.size_bytes * config.per_byte_s
        submit_timed = self._submit_timed
        if submit_timed is not None and self._jitter_rng is None:
            # Fast path: the serialisation completion is arithmetic, so the
            # only event this hop needs is the propagation arrival (plus a
            # pacing wake-up when the sender asked for one). ``args`` carry
            # the payload and on_wire to _on_queue_drop.
            completion = submit_timed(service, None, payload, on_wire)
            if completion is None:
                return False
            sim = self.sim
            event = sim.push_event(completion + self.latency_s,
                                   self._arrive_cb, (payload,))
            self._in_flight.append((completion, payload.size_bytes,
                                    payload, event))
            if on_wire is not None:
                sim.push_event(completion, on_wire, ())
            return True
        return self._server.submit(service, self._on_serialised, payload, on_wire)

    def _on_queue_drop(self, fn, args):
        self._stats.dropped_queue += 1
        # Still notify the sender that the link "consumed" the message so
        # pacing callbacks do not stall.
        on_wire = args[1]
        if on_wire is not None:
            on_wire()

    def _on_serialised(self, payload, on_wire):
        stats = self._stats
        stats.sent += 1
        stats.bytes_sent += payload.size_bytes
        delay = self.latency_s
        if self._jitter_rng is not None:
            delay += self._jitter_rng.uniform(0.0, self.config.jitter_s)
        self.sim.schedule(delay, self._arrive_cb, payload)
        if on_wire is not None:
            on_wire()

    def _arrive(self, payload):
        # Counter draining is lazy (any read through ``stats`` drains); the
        # arrival itself only keeps the deque bounded between reads.
        if len(self._in_flight) >= self._DRAIN_BATCH:
            self._drain_sent(self.sim.now)
        if self.loss_hook is not None and self.loss_hook(self.dst):
            self._stats.dropped_loss += 1
            return
        self._stats.delivered += 1
        self._deliver(self.src, payload)

    def rebind_deliver(self, deliver):
        """Point arrivals directly at the receiver's resolved callback.

        The destination transport calls this once its receive callback is
        claimed, cutting its dispatch frame out of every arrival. Purely
        a call-graph flattening: the same callback runs with the same
        arguments at the same instants.
        """
        self._deliver = deliver

    def _drain_sent(self, now):
        """Count fast-path messages whose serialisation has completed."""
        in_flight = self._in_flight
        if not in_flight:
            return
        stats = self._stats
        while in_flight and in_flight[0][0] <= now:
            record = in_flight.popleft()
            stats.sent += 1
            stats.bytes_sent += record[1]

    def _requeue_in_flight(self):
        """Move not-yet-serialised fast-path messages onto the legacy path.

        Called by :meth:`degrade`: those messages' arrival events were
        computed from the pre-degradation latency, but they serialise
        *after* the change and must observe the new parameters. Each gets
        its pre-computed arrival cancelled and a serialisation-completion
        event scheduled instead, which re-reads latency (and draws jitter)
        at exactly the instant the legacy path would have.
        """
        in_flight = self._in_flight
        if not in_flight:
            return
        sim = self.sim
        self._drain_sent(sim.now)
        while in_flight:
            completion, _size, payload, event = in_flight.popleft()
            sim.cancel(event)
            # on_wire=None: the pacing event (if any) was scheduled
            # separately at transmit time and still fires at ``completion``.
            sim.schedule_at(completion, self._on_serialised, payload, None)
