"""EXPERIMENTS.md generator.

Reads the machine-readable benchmark artifacts under
``benchmarks/results/`` and renders the paper-vs-measured record for every
table and figure. Regenerate after running the benchmark suite::

    pytest benchmarks/ --benchmark-only -s
    python -m repro.analysis.report [results_dir] [output.md]

Paper reference numbers are the ones quoted in the paper's text (§4).
"""

import json
import pathlib
import sys

#: The paper's headline numbers, indexed the way the benchmarks report.
PAPER = {
    "fig3_low_load_latency_overhead": {13: 0.38, 53: 0.39, 105: 0.25},
    "fig3_saturation_latency_overhead": {13: 0.51, 53: 0.52, 105: 0.49},
    "fig4_gossip_below_baseline": {13: 0.47, 53: 0.74, 105: 0.59},
    "fig4_semantic_over_gossip": {13: 1.14, 53: 1.79, 105: 2.4},
    "sec43_redundancy": {13: 2.0, 53: 5.0, 105: 8.0},
    "sec43_dup_fraction": {13: 0.49, 53: 0.80, 105: 0.87},
    "sec43_semantic_received_cut": 0.58,   # n=105, at saturation
    "sec43_semantic_delivered_cut": 0.16,
    "sec43_semantic_dup_fraction": 0.82,
    "fig5_semantic_avg_improvement": 0.054,
    "fig5_semantic_p999_improvement": 0.28,
    "fig6_loss10_max_not_ordered": 0.025,
    "fig6_loss20_max_not_ordered": 0.08,
    "fig6_loss30_max_not_ordered": 0.23,
    "fig8_avg_improvement": 0.23,
    "fig8_improvement_range": (0.11, 0.39),
}


def _load(results_dir, name):
    path = results_dir / "{}.json".format(name)
    if not path.exists():
        return None
    with open(path) as fh:
        return json.load(fh)


def _pct(x):
    return "{:+.0%}".format(x)


def _row(cells):
    return "| " + " | ".join(str(c) for c in cells) + " |"


def _table(headers, rows):
    lines = [_row(headers), _row(["---"] * len(headers))]
    lines.extend(_row(r) for r in rows)
    return "\n".join(lines)


def render(results_dir):
    """Render the full EXPERIMENTS.md body as a string."""
    results_dir = pathlib.Path(results_dir)
    parts = [HEADER]

    table1 = _load(results_dir, "table1_wan_latencies")
    if table1:
        rows = [[region,
                 "{:.0f}".format(table1["paper_ms"][region]),
                 "{:.0f}".format(table1["measured_ms"][region])]
                for region in sorted(table1["paper_ms"])]
        parts.append("## Table 1 — WAN latencies (ms, one-way, from N. "
                     "Virginia)\n\nExact by construction (the paper's "
                     "values parameterise the latency model; the bench "
                     "verifies the wiring end-to-end).\n")
        parts.append(_table(["region", "paper", "measured"], rows))

    fig3 = _load(results_dir, "fig3_overall_performance")
    fig4 = _load(results_dir, "fig4_saturation_throughput")
    if fig3 and fig4:
        parts.append(FIG3_INTRO)
        rows = []
        for n_str, entry in sorted(fig4["data"].items(), key=lambda kv: int(kv[0])):
            n = int(n_str)
            gossip = fig3["data"]["gossip-{}".format(n)]["points"]
            baseline = fig3["data"]["baseline-{}".format(n)]["points"]
            semantic = fig3["data"]["semantic-{}".format(n)]["points"]
            knee = fig3["data"]["gossip-{}".format(n)]["saturation_index"]
            low = (gossip[0]["avg_latency_ms"]
                   / baseline[0]["avg_latency_ms"] - 1)
            at_knee = (gossip[knee]["avg_latency_ms"]
                       / baseline[knee]["avg_latency_ms"] - 1)
            # Our queueing knee is sharp: at the detected knee the latency
            # gap may not have opened yet, so report the gain both at the
            # knee and at the highest (most saturated) common workload.
            semantic_improvement = max(
                1 - semantic[i]["avg_latency_ms"] / gossip[i]["avg_latency_ms"]
                for i in (knee, len(gossip) - 1)
            )
            rows.append([
                n,
                "{} / {}".format(
                    _pct(PAPER["fig3_low_load_latency_overhead"][n]),
                    _pct(low)),
                "{} / {}".format(
                    _pct(PAPER["fig3_saturation_latency_overhead"][n]),
                    _pct(at_knee)),
                "-{:.0%} / -{:.0%}".format(
                    PAPER["fig4_gossip_below_baseline"][n],
                    entry["gossip_below_baseline"]),
                "{:.2f}x / {:.2f}x".format(
                    PAPER["fig4_semantic_over_gossip"][n],
                    entry["semantic_over_gossip"]),
                "{} / {}".format(
                    {13: "+6-7%", 53: "+11%", 105: "+24%"}[n],
                    _pct(semantic_improvement)),
            ])
        parts.append(_table(
            ["n", "gossip latency overhead, low load (paper/ours)",
             "at gossip saturation (paper/ours)",
             "gossip thr. vs baseline (paper/ours)",
             "semantic thr. vs gossip (paper/ours)",
             "semantic latency gain under saturation (paper/ours)"],
            rows))

    sec43 = _load(results_dir, "sec43_message_redundancy")
    if sec43:
        parts.append(SEC43_INTRO)
        rows = []
        for n_str, entry in sorted(sec43["data"].items(), key=lambda kv: int(kv[0])):
            n = int(n_str)
            rows.append([
                n,
                "{:.0f}x / {:.1f}x".format(PAPER["sec43_redundancy"][n],
                                           entry["redundancy_factor"]),
                "{:.0%} / {:.0%}".format(PAPER["sec43_dup_fraction"][n],
                                         entry["gossip_duplicate_fraction"]),
                "-{:.0%}".format(entry["semantic_received_reduction"]),
                "-{:.0%}".format(entry["semantic_delivered_reduction"]),
                "{:.0%}".format(entry["semantic_duplicate_fraction"]),
            ])
        parts.append(_table(
            ["n", "redundancy vs baseline coord (paper/ours)",
             "gossip duplicates (paper/ours)",
             "semantic received (ours; paper -58% at n=105)",
             "semantic delivered (ours; paper -16%)",
             "semantic duplicates (ours; paper 82% at n=105)"],
            rows))

    fig5 = _load(results_dir, "fig5_latency_cdf")
    if fig5:
        parts.append(FIG5_INTRO)
        rows = []
        for setup in ("baseline", "gossip", "semantic"):
            entry = fig5["data"][setup]
            rows.append([
                setup,
                "{:.0f}".format(entry["avg_ms"]),
                "{:.0f}".format(entry["stddev_ms"]),
                "{:.0f}".format(entry["p50_ms"]),
                "{:.0f}".format(entry["p99_ms"]),
                "{:.0f}".format(entry["p999_ms"]),
            ])
        parts.append(_table(
            ["setup", "avg ms", "stddev ms", "p50", "p99", "p99.9"], rows))
        gossip = fig5["data"]["gossip"]
        semantic = fig5["data"]["semantic"]
        baseline = fig5["data"]["baseline"]
        parts.append(
            "\nChecks: gossip-setup stddev < Baseline stddev "
            "({:.0f} < {:.0f} ms — the paper's geographic-dispersion "
            "observation); semantic avg vs gossip: {} (paper: -5.4%); "
            "semantic p99.9 vs gossip: {} (paper: -28%).".format(
                gossip["stddev_ms"], baseline["stddev_ms"],
                _pct(semantic["avg_ms"] / gossip["avg_ms"] - 1),
                _pct(semantic["p999_ms"] / gossip["p999_ms"] - 1)))

    fig6 = _load(results_dir, "fig6_reliability")
    if fig6:
        parts.append(FIG6_INTRO.format(n=fig6["n"], runs=fig6["runs_per_cell"]))
        for setup in ("gossip", "semantic"):
            raw = fig6["data"][setup]
            grid = {}
            for key, value in raw.items():
                loss_text, rate_text = key.split("|")
                grid[(float(loss_text), float(rate_text))] = value
            losses = sorted({loss for loss, _ in grid})
            rates = sorted({rate for _, rate in grid})
            rows = []
            for loss in losses:
                row = ["{:.0%}".format(loss)]
                for rate in rates:
                    value = grid[(loss, rate)]
                    row.append("-" if value == 0 else "{:.1%}".format(value))
                rows.append(row)
            parts.append("\n**{}** (fraction of values not ordered; "
                         "columns = values/s)\n".format(setup))
            parts.append(_table(
                ["loss \\ rate"] + ["{:.0f}".format(r) for r in rates], rows))

    fig7 = _load(results_dir, "fig7_overlay_selection")
    if fig7:
        points = fig7["points"]
        rtts = [p["median_rtt_ms"] for p in points]
        parts.append(FIG7_INTRO.format(
            count=len(points), lo=min(rtts), hi=max(rtts),
            selected=fig7["selected_overlay"]))

    fig8 = _load(results_dir, "fig8_overlay_comparison")
    if fig8:
        improvements = [p["improvement"] for p in fig8["points"]]
        parts.append(FIG8_INTRO.format(
            count=len(improvements),
            avg=fig8["average_improvement"],
            lo=min(improvements), hi=max(improvements),
            paper_avg=PAPER["fig8_avg_improvement"],
            paper_lo=PAPER["fig8_improvement_range"][0],
            paper_hi=PAPER["fig8_improvement_range"][1]))

    ext_chaos = _load(results_dir, "ext_chaos")
    if ext_chaos:
        parts.append(EXT_CHAOS_INTRO)
        entries = ext_chaos["data"]
        rows = []
        for variant in sorted(entries):
            cell = entries[variant]
            rows.append([
                variant,
                "ok" if cell["ok"] else "FAIL",
                cell["violations"], cell["missing"],
                "{}/{}".format(cell["decided"], cell["submitted"]),
                cell["fault_drops"], cell["retransmissions"],
            ])
        parts.append(_table(
            ["scenario-setup-seed", "status", "violations", "missing",
             "decided", "fault drops", "retransmits"], rows))

    for name, title in (
        ("ablation_semantics", "Ablation — filtering vs aggregation"),
        ("ablation_dedup", "Ablation — duplicate-detection structures"),
        ("ablation_batching", "Ablation — aggregation vs network batching"),
        ("ext_raft", "Extension — Raft over gossip (paper §5.1)"),
        ("ext_strategies", "Extension — dissemination strategies (§2.2)"),
        ("ext_spaxos", "Extension — S-Paxos id-only ordering (§5.1)"),
    ):
        payload = _load(results_dir, name)
        if not payload:
            continue
        parts.append("\n## {}\n".format(title))
        entries = payload["data"]
        keys = sorted(next(iter(entries.values())).keys())
        rows = [[variant] + [_fmt(entries[variant][k]) for k in keys]
                for variant in entries]
        parts.append(_table(["variant"] + keys, rows))

    parts.append(DEVIATIONS)
    return "\n\n".join(parts) + "\n"


def _fmt(value):
    if isinstance(value, float):
        if abs(value) < 1:
            return "{:.3f}".format(value)
        return "{:.1f}".format(value)
    return str(value)


HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of *Gossip Consensus* (Middleware '21) regenerated
on this repository's deterministic simulator. Absolute numbers are not
comparable to the paper's EC2 testbed by construction (DESIGN.md §2); the
record below therefore pairs each of the paper's *relative* findings with
our measured counterpart. Generated by `python -m repro.analysis.report`
from `benchmarks/results/`; scale = the `REPRO_BENCH_SCALE` the benchmarks
ran at (default `quick`: reduced sizes/durations)."""

FIG3_INTRO = """## Figures 3 & 4 — overall performance and saturation throughput

Paper: gossip raises latency (+38/39/25% at low load; +51/52/49% at its
saturation point for n=13/53/105) and saturates earlier than Baseline
(-47/-74/-59% throughput); Semantic Gossip sustains higher workloads
(+14%/+79%/2.4x) and lowers latency at the Gossip saturation point
(6-7%/11%/24%). Ours, from the same sweep protocol (saturation = highest
throughput/latency ratio, the paper's knee criterion):"""

SEC43_INTRO = """## §4.3 — message redundancy

Paper: a regular gossip process receives 2x/5x/8x what the Baseline
coordinator receives (n=13/53/105); 49%/80%/87% of received messages are
duplicates; the semantic techniques cut received messages (up to -58%) and
delivered messages (-16%) while keeping most duplicate redundancy (82%):"""

FIG5_INTRO = """## Figure 5 — latency distributions (same sub-saturation workload)

Paper (n=105 @ 104/s): Baseline CDF shows per-region steps; gossip setups
have *lower* latency stddev; Semantic Gossip trims the tail (p99.9 -28%)
and the average (-5.4%). Ours:"""

FIG6_INTRO = """## Figure 6 — reliability under injected message loss

Paper (n=105, retransmissions disabled, 10 runs/cell): all values ordered
below 10% loss; ≤2.5% lost at 10%; ≤8% at 20%; ≤23% at 30% (29% for
Semantic Gossip, its only regression). Ours (n={n}, {runs} runs/cell) —
same cliff structure; absolute cell values are high-variance because one
early failed instance blocks a whole run's tail:"""

FIG7_INTRO = """## Figure 7 — overlay selection

Paper: 100 random overlays measured under minimal workload; median
coordinator RTT orders overlays by latency (imperfectly); the median
overlay is adopted for the core experiments. Ours: {count} overlays,
median RTT spread {lo:.0f}-{hi:.0f} ms, latency increases with RTT
(asserted in the bench), overlay seed {selected} selected — and the
benchmark suite enforces the median-of-100 overlay per system size,
as the paper does."""

FIG8_INTRO = """## Figure 8 — Gossip vs Semantic Gossip across overlays

Paper: Semantic Gossip improves latency on every one of 100 overlays at
the Gossip-saturating workload: 11-39%, 23% on average. Ours: over
{count} overlays, improvement {lo:+.0%} to {hi:+.0%}, {avg:+.0%} on
average (paper: {paper_lo:+.0%} to {paper_hi:+.0%}, {paper_avg:+.0%}) —
same sign everywhere, smaller magnitude (our cost model's knee is sharper
than the testbed's, so the at-knee gap is narrower)."""

EXT_CHAOS_INTRO = """## Extension — chaos scenarios (beyond §4.5)

The paper's reliability study injects uniform loss with every
timeout-triggered procedure disabled. The chaos harness
([docs/faults.md](docs/faults.md), `python -m repro chaos`) extends it to
partitions, coordinator crashes with failover, Gilbert-Elliott loss
bursts and gray failures — seeded, with the safety invariant monitor
armed. Contract asserted per run: **safety always, liveness after
heal**."""

DEVIATIONS = """## Known deviations

1. **Absolute scale** — simulator time, not EC2 time; all comparisons are
   within-run relatives. System sizes/durations are reduced at the default
   `quick` scale (`REPRO_BENCH_SCALE=paper` runs n=105 grids).
2. **Aggregation at low load** — effective in the simulator even at low
   rates: identical votes convoy along shared overlay paths and meet in
   per-peer send queues. The paper's "ineffective under low loads" shows
   up here only as the absence of a latency benefit.
3. **Duplicate fractions at n=105** — ours plateau near 80% (paper 87%)
   because the integer k=3 overlay has degree ~6 versus the paper's 6.7.
4. **Semantic latency gains** — direction and growth-with-n match; the
   magnitude at the knee is smaller than the paper's because our queueing
   knee is sharper than the EC2 testbed's.
5. **Raft under loss** (extension) — without retransmissions Raft blocks
   harder than Paxos (CommitNotice carries no value; acks are gated on
   contiguity); with the nextIndex-style repair enabled it recovers. Found
   and documented while implementing the paper's §5.1 claim."""


def main(argv=None):
    argv = argv if argv is not None else sys.argv[1:]
    results_dir = pathlib.Path(argv[0]) if argv else (
        pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results")
    output = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parents[3] / "EXPERIMENTS.md")
    text = render(results_dir)
    output.write_text(text)
    print("wrote {} ({} bytes) from {}".format(output, len(text), results_dir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
