"""Fault injection.

The paper's reliability study (§4.5) "randomly discards messages received by
a process". :class:`ReceiverLossInjector` reproduces that: it is installed
as the ``loss_hook`` of every link and drops each arriving message with a
configured probability, using a dedicated RNG stream so that loss decisions
are independent of every other source of randomness in the run.
"""


class ReceiverLossInjector:
    """Drops arriving messages with a fixed probability per receiver."""

    __slots__ = ("rate", "_rng", "dropped", "examined", "_per_process")

    def __init__(self, sim, rate=0.0, per_process=None, stream="faults"):
        """
        Parameters
        ----------
        rate:
            Default drop probability in [0, 1].
        per_process:
            Optional dict overriding the rate for specific receiver ids.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be within [0, 1]")
        self.rate = rate
        self._per_process = dict(per_process or {})
        self._rng = sim.rng(stream)
        self.dropped = 0
        self.examined = 0

    def __call__(self, dst):
        """Return True when the message arriving at ``dst`` must be lost."""
        self.examined += 1
        rate = self._per_process.get(dst, self.rate)
        if rate <= 0.0:
            return False
        if self._rng.random() < rate:
            self.dropped += 1
            return True
        return False
