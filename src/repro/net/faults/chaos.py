"""Seeded chaos scenarios: fault plans + the safety/liveness harness.

The paper's reliability study (§4.5) injects only uniform receiver-side
loss and explicitly disables every timeout-triggered procedure. The chaos
harness extends that study to the correlated WAN failure modes the gossip
substrate is meant to mask — and, because recovering from them *requires*
the timeout-triggered procedures, scenarios run with retransmission (and,
where a scenario kills the coordinator, failover) enabled.

Every scenario is **randomized but seeded**: parameters (partition
membership, window boundaries, burst intensities, gray factors) are drawn
from the dedicated ``make_stream(seed, "chaos")`` stream, so a (scenario,
setup, seed) triple fully determines the run, including the failure trace.

The harness asserts the contract **safety always, liveness after heal**:

* safety — a :class:`repro.checks.SafetyMonitor` is armed for the whole
  run; any agreement/monotonicity/quorum/aggregation violation fails the
  scenario;
* liveness — every value submitted before the fault window opens, and
  every value submitted after it heals, must decide by the end of the
  drain. A value counts as decided when its submitting client was
  notified *or* some learner chose it (a client colocated with a crashed
  process never hears back even though the system decided its value).
  Values submitted *during* the window are deliberately not asserted:
  with the paper's unreliable client forwarding they can be legitimately
  lost, which the reliability metrics (not the liveness gate) report.
"""

from repro.checks.monitor import SafetyMonitor
from repro.membership import MembershipConfig
from repro.net.faults.events import (
    BurstLoss,
    ClearBurstLoss,
    Crash,
    FaultPlan,
    GrayFailure,
    Heal,
    Join,
    Leave,
    Partition,
    Rejoin,
)
from repro.runtime.config import SETUPS, ExperimentConfig
from repro.runtime.runner import run_deployment
from repro.sim.random import make_stream

#: Values submitted within this many seconds of the fault window opening
#: may still be in flight (one WAN delay) when the fault hits; the
#: liveness gate does not assert them.
IN_FLIGHT_GUARD_S = 0.2


def chaos_config(setup="gossip", **overrides):
    """A small, chaos-ready configuration: retransmission enabled.

    The paper's §4.5 study disables timeout-triggered procedures; chaos
    scenarios enable them because liveness after a heal depends on them.
    """
    defaults = dict(
        setup=setup,
        n=7,
        rate=40.0,
        warmup=0.5,
        duration=1.5,
        drain=3.0,
        seed=1,
        retransmit_timeout=0.25,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class ScenarioRun:
    """One built scenario: the config to run plus the liveness window."""

    __slots__ = ("config", "fault_start", "heal_at", "excluded_clients")

    def __init__(self, config, fault_start, heal_at, excluded_clients=()):
        self.config = config
        self.fault_start = fault_start
        self.heal_at = heal_at
        self.excluded_clients = frozenset(excluded_clients)


class Scenario:
    """A named chaos scenario: a seeded builder plus its applicability."""

    __slots__ = ("name", "build", "setups", "summary")

    def __init__(self, name, build, setups=SETUPS, summary=""):
        self.name = name
        self.build = build
        self.setups = tuple(setups)
        self.summary = summary

    def supports(self, setup):
        return setup in self.setups


def _window(config, rng, open_frac=(0.2, 0.4), close_frac=(0.6, 0.8)):
    """A fault window inside the measured workload, jittered by ``rng``."""
    start = config.warmup + rng.uniform(*open_frac) * config.duration
    heal = config.warmup + rng.uniform(*close_frac) * config.duration
    return start, heal


def _build_partition_heal(config, rng):
    """Partition the coordinator into a minority; heal mid-workload."""
    n = config.n
    coordinator = config.coordinator_id
    start, heal = _window(config, rng)
    minority = (n - 1) // 2
    others = [pid for pid in range(n) if pid != coordinator]
    isolated = [coordinator] + sorted(rng.sample(others, minority - 1))
    plan = FaultPlan([(start, Partition([isolated])), (heal, Heal())])
    return ScenarioRun(
        config.replace(faults=plan),
        fault_start=start - IN_FLIGHT_GUARD_S,
        heal_at=heal,
    )


def _build_coordinator_crash(config, rng):
    """Kill the coordinator mid-Phase-1; a backup takes over (failover)."""
    failover = 0.4
    crash_at = rng.uniform(0.02, 0.08)  # Phase 1 needs a WAN round trip
    plan = FaultPlan([(crash_at, Crash(config.coordinator_id))])
    # Rank-1 backup waits out `failover` of silence, then runs Phase 1
    # itself; allow a takeover plus one Phase 1 before expecting progress.
    heal_at = crash_at + 3.0 * failover
    return ScenarioRun(
        config.replace(faults=plan, failover_timeout=failover),
        fault_start=crash_at - IN_FLIGHT_GUARD_S,
        heal_at=heal_at,
        excluded_clients=(config.coordinator_id,),
    )


def _build_burst_loss(config, rng):
    """Gilbert–Elliott loss bursts at the paper's Fig. 6 intensities."""
    start, stop = _window(config, rng, open_frac=(0.1, 0.25))
    event = BurstLoss(
        p_enter=rng.uniform(0.01, 0.03),
        p_exit=rng.uniform(0.15, 0.30),
        loss_bad=rng.uniform(0.20, 0.30),
    )
    plan = FaultPlan([(start, event), (stop, ClearBurstLoss())])
    return ScenarioRun(
        config.replace(faults=plan),
        fault_start=start - IN_FLIGHT_GUARD_S,
        heal_at=stop,
    )


def _build_gray_coordinator(config, rng):
    """Slow the coordinator's CPU 10-25x: alive, but late everywhere."""
    start, stop = _window(config, rng)
    factor = rng.uniform(10.0, 25.0)
    plan = FaultPlan([
        (start, GrayFailure(config.coordinator_id, factor)),
        (stop, GrayFailure(config.coordinator_id, 1.0)),
    ])
    return ScenarioRun(
        config.replace(faults=plan),
        fault_start=start - IN_FLIGHT_GUARD_S,
        heal_at=stop,
    )


def _churn_membership(initial_members):
    """Membership timings fast enough for the chaos workload window.

    Detection plus re-election must complete well inside the measured
    workload so the liveness gate has a post-heal population to assert.
    """
    return MembershipConfig(
        heartbeat_interval=0.04,
        suspicion_timeout=0.15,
        dead_timeout=0.3,
        initial_members=initial_members,
        election_backoff=0.15,
        election_backoff_max=0.6,
        election_jitter=0.03,
    )


def _build_membership_churn(config, rng):
    """Join, graceful leave and rejoin on the fault timeline.

    The cluster starts with processes ``0..n-2``; ``n-1`` joins mid
    workload, a random non-coordinator member leaves gracefully (overlay
    repaired, quorum shrinks by an epoch), then the leaver rejoins with a
    bumped incarnation. The leader never dies, so this exercises the view
    and overlay machinery without an election.
    """
    n = config.n
    joiner = n - 1
    initial = tuple(range(n - 1))
    leaver = rng.choice(
        [pid for pid in initial if pid != config.coordinator_id])
    t_join = config.warmup + rng.uniform(0.20, 0.30) * config.duration
    t_leave = config.warmup + rng.uniform(0.40, 0.50) * config.duration
    t_rejoin = config.warmup + rng.uniform(0.65, 0.75) * config.duration
    plan = FaultPlan([
        (t_join, Join(joiner)),
        (t_leave, Leave(leaver)),
        (t_rejoin, Rejoin(leaver)),
    ])
    return ScenarioRun(
        config.replace(faults=plan, membership=_churn_membership(initial)),
        fault_start=t_join - IN_FLIGHT_GUARD_S,
        heal_at=t_rejoin + 0.3,
        # The joiner's process is down until t_join, so its colocated
        # client's pre-fault submissions are legitimately lost.
        excluded_clients=(joiner,),
    )


def _build_leader_churn_rejoin(config, rng):
    """Crash the leader; heartbeats detect it and elect a successor.

    Unlike ``coordinator-crash`` (fixed failover timeout), detection and
    re-election run through the membership layer's suspicion/dead-report
    pipeline; the dead leader later rejoins with a bumped incarnation and
    the view readmits it under the elected successor.
    """
    membership = _churn_membership(tuple(range(config.n)))
    t_crash = config.warmup + rng.uniform(0.10, 0.20) * config.duration
    t_rejoin = config.warmup + rng.uniform(0.70, 0.80) * config.duration
    plan = FaultPlan([
        (t_crash, Crash(config.coordinator_id)),
        (t_rejoin, Rejoin(config.coordinator_id)),
    ])
    # Silence -> dead report -> election backoff (+ jitter) -> the
    # successor's Phase 1; allow one WAN round trip on top before the
    # liveness gate expects progress.
    heal_at = max(
        t_rejoin + IN_FLIGHT_GUARD_S,
        t_crash + membership.dead_timeout + membership.election_backoff
        + membership.election_jitter + 0.45,
    )
    return ScenarioRun(
        config.replace(faults=plan, membership=membership),
        fault_start=t_crash - IN_FLIGHT_GUARD_S,
        heal_at=heal_at,
        excluded_clients=(config.coordinator_id,),
    )


#: The canonical seeded scenarios, in reporting order.
SCENARIOS = {
    scenario.name: scenario
    for scenario in (
        Scenario("partition-heal", _build_partition_heal,
                 summary="coordinator isolated in a minority, then healed"),
        Scenario("coordinator-crash", _build_coordinator_crash,
                 setups=("gossip", "semantic"),
                 summary="coordinator dies mid-Phase-1; backup fails over"),
        Scenario("burst-loss", _build_burst_loss,
                 summary="Gilbert-Elliott loss bursts at Fig. 6 rates"),
        Scenario("gray-coordinator", _build_gray_coordinator,
                 summary="coordinator CPU slows 10-25x but stays alive"),
        Scenario("membership-churn", _build_membership_churn,
                 setups=("gossip", "semantic"),
                 summary="join, graceful leave with overlay repair, rejoin"),
        Scenario("leader-churn-rejoin", _build_leader_churn_rejoin,
                 setups=("gossip", "semantic"),
                 summary="leader dies; heartbeat election; dead leader "
                         "rejoins"),
    )
}


class ChaosResult:
    """Outcome of one chaos scenario run."""

    __slots__ = ("scenario", "setup", "seed", "config", "report",
                 "deployment", "monitor", "missing", "fault_start", "heal_at")

    def __init__(self, scenario, setup, seed, config, report, deployment,
                 monitor, missing, fault_start, heal_at):
        self.scenario = scenario
        self.setup = setup
        self.seed = seed
        self.config = config
        self.report = report
        self.deployment = deployment
        self.monitor = monitor
        self.missing = missing          # value ids failing the liveness gate
        self.fault_start = fault_start
        self.heal_at = heal_at

    @property
    def violations(self):
        return self.monitor.violations

    @property
    def liveness_ok(self):
        return not self.missing

    @property
    def ok(self):
        return not self.violations and self.liveness_ok

    def fingerprint(self):
        """Deterministic run digest: equal for equal (scenario, seed)."""
        report = self.report
        engine = self.deployment.fault_engine
        fault = engine.stats if engine is not None else None
        return (
            report.submitted,
            report.decided,
            report.messages.received_total,
            report.messages.retransmissions,
            self.monitor.messages_observed,
            len(self.monitor.chosen),
            (fault.total_drops, tuple(sorted(fault.injections.items())))
            if fault is not None else None,
        )

    def detach(self):
        """A picklable :class:`ChaosSummary` of this result.

        Drops the live deployment and monitor (neither crosses a process
        boundary — they are webs of scheduled callbacks) while keeping
        everything reporting aggregates over: the report, the recorded
        violations, the liveness gaps and the precomputed fingerprint.
        """
        return ChaosSummary(
            scenario=self.scenario, setup=self.setup, seed=self.seed,
            config=self.config, report=self.report,
            violations=list(self.violations), missing=list(self.missing),
            fault_start=self.fault_start, heal_at=self.heal_at,
            fingerprint=self.fingerprint(),
        )


class ChaosSummary:
    """Deployment-free view of a :class:`ChaosResult`.

    Mirrors the result's reporting surface (``ok``, ``violations``,
    ``missing``, ``report``, ``fingerprint()``) but holds only picklable
    state, so it can be produced worker-side by the parallel chaos suite
    and shipped back whole. White-box fields (``deployment``, ``monitor``)
    are deliberately absent: inspect those via a serial run.
    """

    __slots__ = ("scenario", "setup", "seed", "config", "report",
                 "violations", "missing", "fault_start", "heal_at",
                 "_fingerprint")

    def __init__(self, scenario, setup, seed, config, report, violations,
                 missing, fault_start, heal_at, fingerprint):
        self.scenario = scenario
        self.setup = setup
        self.seed = seed
        self.config = config
        self.report = report
        self.violations = violations
        self.missing = missing
        self.fault_start = fault_start
        self.heal_at = heal_at
        self._fingerprint = fingerprint

    @property
    def liveness_ok(self):
        return not self.missing

    @property
    def ok(self):
        return not self.violations and self.liveness_ok

    def fingerprint(self):
        """The digest computed by the worker that ran the scenario."""
        return self._fingerprint


def liveness_gaps(deployment, monitor, fault_start, heal_at,
                  excluded_clients=()):
    """Value ids violating "liveness after heal"; empty means it held.

    Asserted population: values submitted before ``fault_start`` or after
    ``heal_at`` by clients not in ``excluded_clients``. A value counts as
    decided when its client saw the decision or any learner chose it.
    """
    chosen_ids = set(monitor.chosen.values())
    missing = []
    for value_id, record in deployment.collector.items():
        if record.client_id in excluded_clients:
            continue
        if fault_start <= record.submitted_at < heal_at:
            continue
        if record.decided_at is None and value_id not in chosen_ids:
            missing.append(value_id)
    return missing


def run_chaos_scenario(name, base_config=None, seed=1, strict=False):
    """Run one seeded scenario with the safety monitor armed.

    Parameters
    ----------
    name:
        A key of :data:`SCENARIOS`.
    base_config:
        Starting :class:`ExperimentConfig`; defaults to
        :func:`chaos_config`. The scenario overrides ``seed`` and installs
        its fault plan (plus failover where it needs one).
    strict:
        Raise at the first safety violation instead of recording it.
    """
    scenario = SCENARIOS[name]
    config = base_config if base_config is not None else chaos_config()
    if not scenario.supports(config.setup):
        raise ValueError("scenario {!r} does not support the {!r} setup "
                         "(supported: {})".format(
                             name, config.setup, ", ".join(scenario.setups)))
    rng = make_stream(seed, "chaos")
    run = scenario.build(config.replace(seed=seed), rng)
    monitor = SafetyMonitor(strict=strict)
    deployment, report = run_deployment(run.config, monitor=monitor)
    missing = liveness_gaps(deployment, monitor, run.fault_start,
                            run.heal_at, run.excluded_clients)
    return ChaosResult(
        scenario=name, setup=config.setup, seed=seed, config=run.config,
        report=report, deployment=deployment, monitor=monitor,
        missing=missing, fault_start=run.fault_start, heal_at=run.heal_at,
    )


def run_scenario_task(task):
    """Run one ``(name, config, seed)`` task and return a detached summary.

    The worker body of the parallel chaos suite (and the CLI's
    ``--workers`` path): top-level so the spawn start method can import
    it, detached so the result pickles back to the parent.
    """
    name, config, seed = task
    return run_chaos_scenario(name, config, seed=seed).detach()


def run_chaos_suite(base_config=None, names=None, seeds=(1,), workers=1):
    """Run scenarios x seeds against one setup; skips unsupported pairs.

    Returns the list of :class:`ChaosResult` (unsupported combinations are
    silently omitted — the CLI reports them as skipped). With ``workers``
    above 1 the runs execute on the process-pool executor and the list
    holds :class:`ChaosSummary` objects instead — same order, same
    reporting surface, identical fingerprints, but no live deployments.
    """
    from repro.runtime.parallel import parallel_map, resolve_workers

    config = base_config if base_config is not None else chaos_config()
    tasks = [
        (name, config, seed)
        for name in (names if names is not None else list(SCENARIOS))
        if SCENARIOS[name].supports(config.setup)
        for seed in seeds
    ]
    if resolve_workers(workers, len(tasks)) > 1:
        return parallel_map(run_scenario_task, tasks, workers=workers)
    return [run_chaos_scenario(name, task_config, seed=seed)
            for name, task_config, seed in tasks]


class ChaosSchedule:
    """Seeded generator of randomized composite fault plans.

    Where :data:`SCENARIOS` pins four curated failure stories,
    ``ChaosSchedule`` derives arbitrary-but-reproducible plans for
    exploratory sweeps (see :func:`repro.runtime.sweep.fault_grid`): every
    draw comes from the ``"chaos"`` named stream of its seed, so
    ``ChaosSchedule(seed, config).plan(...)`` is a pure function.
    """

    def __init__(self, seed, config):
        self.seed = seed
        self.config = config
        self._rng = make_stream(seed, "chaos")

    def partition_plan(self, duration=None):
        """A random minority partition (never isolating a lone majority)."""
        config = self.config
        rng = self._rng
        start = config.warmup + rng.uniform(0.2, 0.4) * config.duration
        if duration is None:
            duration = rng.uniform(0.2, 0.4) * config.duration
        size = rng.randint(1, (config.n - 1) // 2)
        isolated = sorted(rng.sample(range(config.n), size))
        return FaultPlan([
            (start, Partition([isolated])),
            (start + duration, Heal()),
        ])

    def burst_plan(self, loss_bad=None):
        """A random burst-loss episode at (by default) Fig. 6 intensities."""
        config = self.config
        rng = self._rng
        start = config.warmup + rng.uniform(0.1, 0.3) * config.duration
        stop = config.warmup + rng.uniform(0.6, 0.9) * config.duration
        event = BurstLoss(
            p_enter=rng.uniform(0.01, 0.04),
            p_exit=rng.uniform(0.1, 0.3),
            loss_bad=loss_bad if loss_bad is not None
            else rng.uniform(0.1, 0.3),
        )
        return FaultPlan([(start, event), (stop, ClearBurstLoss())])

    def gray_plan(self, factor=None):
        """A random gray-failure episode on a random process."""
        config = self.config
        rng = self._rng
        start, stop = _window(config, rng)
        pid = rng.randrange(config.n)
        if factor is None:
            factor = rng.uniform(5.0, 25.0)
        return FaultPlan([
            (start, GrayFailure(pid, factor)),
            (stop, GrayFailure(pid, 1.0)),
        ])
