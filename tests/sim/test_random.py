"""Unit tests for named RNG streams."""

from repro.sim.random import make_stream, stream_seed


def test_stream_seed_is_stable():
    assert stream_seed(1, "overlay") == stream_seed(1, "overlay")


def test_stream_seed_differs_by_name():
    assert stream_seed(1, "overlay") != stream_seed(1, "faults")


def test_stream_seed_differs_by_root():
    assert stream_seed(1, "overlay") != stream_seed(2, "overlay")


def test_stream_seed_fits_64_bits():
    seed = stream_seed(123456789, "some-long-stream-name")
    assert 0 <= seed < 2 ** 64


def test_make_stream_reproducible():
    a = make_stream(9, "x")
    b = make_stream(9, "x")
    assert [a.randint(0, 100) for _ in range(10)] == [
        b.randint(0, 100) for _ in range(10)
    ]


def test_streams_do_not_interfere():
    """Drawing from one stream must not perturb another."""
    lone = make_stream(5, "b")
    expected = [lone.random() for _ in range(5)]

    a = make_stream(5, "a")
    b = make_stream(5, "b")
    for _ in range(100):
        a.random()
    assert [b.random() for _ in range(5)] == expected


def test_no_collision_over_many_names():
    seeds = {stream_seed(0, "stream-{}".format(i)) for i in range(2000)}
    assert len(seeds) == 2000
