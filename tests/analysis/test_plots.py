"""Tests for the ASCII chart renderer."""

import json

import pytest

from repro.analysis.plots import main, plot_fig7, scatter


def test_scatter_renders_marks_and_axes():
    chart = scatter([("a", [(0, 0), (10, 5)]), ("b", [(5, 10)])],
                    width=40, height=10, xlabel="xs", ylabel="ys",
                    title="T")
    assert chart.splitlines()[0] == "T"
    assert "o" in chart and "x" in chart
    assert "xs" in chart and "ys" in chart
    assert "o a" in chart and "x b" in chart


def test_scatter_empty():
    assert scatter([]) == "(no data)"


def test_scatter_single_point_does_not_divide_by_zero():
    chart = scatter([("a", [(3, 3)])], width=20, height=5)
    assert "o" in chart


def test_scatter_extremes_land_on_edges():
    chart = scatter([("a", [(0, 0), (1, 1)])], width=30, height=8)
    rows = [line[1:] for line in chart.splitlines() if line.startswith("|")]
    assert rows[0].rstrip().endswith("o")    # max y, max x -> top right
    assert rows[-1].startswith("o")          # min y, min x -> bottom left


def test_plot_fig7_from_json(tmp_path):
    payload = {
        "scale": "quick", "selected_overlay": 1,
        "points": [
            {"overlay": 0, "median_rtt_ms": 100.0, "avg_latency_ms": 200.0},
            {"overlay": 1, "median_rtt_ms": 200.0, "avg_latency_ms": 300.0},
        ],
    }
    with open(tmp_path / "fig7_overlay_selection.json", "w") as fh:
        json.dump(payload, fh)
    chart = plot_fig7(tmp_path)
    assert "Figure 7" in chart


def test_plot_missing_results_returns_none(tmp_path):
    assert plot_fig7(tmp_path) is None


def test_main_rejects_unknown_figure(capsys):
    assert main(["nonexistent-figure"]) == 2
    assert "unknown figure" in capsys.readouterr().out
