"""Loss models implementing the ``loss_hook`` protocol.

The paper's reliability study (§4.5) "randomly discards messages received by
a process". :class:`ReceiverLossInjector` reproduces that: it is installed
as the ``loss_hook`` of every link and drops each arriving message with a
configured probability, using a dedicated RNG stream so that loss decisions
are independent of every other source of randomness in the run.

:class:`GilbertElliottLossInjector` extends the model to *correlated* loss:
a two-state Markov chain (Gilbert–Elliott) alternates between a good state
with near-zero loss and a bad state where most messages are dropped,
producing the loss bursts real WANs exhibit. Both classes expose the same
``hook(dst) -> bool`` protocol plus ``examined``/``dropped`` counters, so
they are interchangeable at every ``loss_hook`` site.
"""


def _check_probability(name, value):
    if not 0.0 <= value <= 1.0:
        raise ValueError("{} must be within [0, 1]".format(name))


class ReceiverLossInjector:
    """Drops arriving messages with a fixed probability per receiver."""

    __slots__ = ("rate", "_rng", "dropped", "examined", "_per_process")

    def __init__(self, sim, rate=0.0, per_process=None, stream="faults"):
        """
        Parameters
        ----------
        rate:
            Default drop probability in [0, 1].
        per_process:
            Optional dict overriding the rate for specific receiver ids.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be within [0, 1]")
        self.rate = rate
        self._per_process = dict(per_process or {})
        self._rng = sim.rng(stream)
        self.dropped = 0
        self.examined = 0

    def __call__(self, dst):
        """Return True when the message arriving at ``dst`` must be lost."""
        self.examined += 1
        rate = self._per_process.get(dst, self.rate)
        if rate <= 0.0:
            return False
        if self._rng.random() < rate:
            self.dropped += 1
            return True
        return False


class GilbertElliottLossInjector:
    """Bursty loss: a two-state Gilbert–Elliott chain per injector.

    The chain starts in the good state. Every examined message is first
    subjected to the current state's loss probability, then the chain
    transitions: good -> bad with ``p_enter`` and bad -> good with
    ``p_exit`` (both per message). The mean burst length is ``1/p_exit``
    messages and the stationary bad-state fraction is
    ``p_enter / (p_enter + p_exit)``.

    Parameters
    ----------
    p_enter:
        Per-message probability of entering the bad (bursty) state.
    p_exit:
        Per-message probability of leaving the bad state.
    loss_bad:
        Drop probability while in the bad state.
    loss_good:
        Drop probability while in the good state (usually 0).
    rng:
        Optional ``random.Random``; defaults to the simulator's named
        ``stream`` so chains sharing a stream stay deterministic.
    """

    __slots__ = ("p_enter", "p_exit", "loss_bad", "loss_good", "_rng",
                 "in_bad", "dropped", "examined", "bursts_entered")

    def __init__(self, sim, p_enter, p_exit, loss_bad, loss_good=0.0,
                 stream="faults-burst", rng=None):
        for name, value in (("p_enter", p_enter), ("p_exit", p_exit),
                            ("loss_bad", loss_bad), ("loss_good", loss_good)):
            _check_probability(name, value)
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.loss_bad = loss_bad
        self.loss_good = loss_good
        self._rng = rng if rng is not None else sim.rng(stream)
        self.in_bad = False
        self.dropped = 0
        self.examined = 0
        self.bursts_entered = 0

    def __call__(self, dst):
        """Return True when the message arriving at ``dst`` must be lost."""
        self.examined += 1
        rng = self._rng
        rate = self.loss_bad if self.in_bad else self.loss_good
        lost = rate > 0.0 and rng.random() < rate
        if lost:
            self.dropped += 1
        if self.in_bad:
            if rng.random() < self.p_exit:
                self.in_bad = False
        elif rng.random() < self.p_enter:
            self.in_bad = True
            self.bursts_entered += 1
        return lost
