"""Tests for Raft message identities and sizes."""

from repro.paxos.messages import HEADER_BYTES, Value
from repro.raft.messages import (
    AggregatedAck,
    AppendAck,
    AppendEntries,
    CommitNotice,
    LogEntry,
    RequestVote,
    VoteReply,
)


def _entry(index=1, term=1, size=1024):
    return LogEntry(term, index, Value(("v", index), 0, size))


def test_append_entries_size_includes_value():
    msg = AppendEntries(1, 0, 0, 0, _entry(size=1024), 0)
    assert msg.size_bytes == HEADER_BYTES + 1024


def test_append_entries_uid_by_term_index_attempt():
    a = AppendEntries(1, 0, 0, 0, _entry(1), 0)
    b = AppendEntries(1, 0, 0, 0, _entry(1), 0, attempt=1)
    c = AppendEntries(1, 0, 1, 1, _entry(2), 0)
    assert a.uid != b.uid
    assert a.uid != c.uid


def test_ack_uid_unique_per_sender_and_attempt():
    assert AppendAck(1, 1, 2).uid != AppendAck(1, 1, 3).uid
    assert AppendAck(1, 1, 2).uid != AppendAck(1, 1, 2, attempt=1).uid


def test_aggregated_ack_roundtrip():
    agg = AggregatedAck(1, 4, senders={3, 1, 2})
    parts = agg.disaggregate()
    assert [p.sender for p in parts] == [1, 2, 3]
    assert all((p.term, p.index) == (1, 4) for p in parts)
    assert agg.aggregated is True


def test_aggregated_ack_stays_small():
    many = AggregatedAck(1, 4, senders=set(range(50)))
    assert many.size_bytes < 2 * AppendAck(1, 4, 0).size_bytes


def test_commit_notice_uid_per_index():
    assert CommitNotice(1, 7).uid == ("CN", 7)
    assert CommitNotice(2, 7).uid == CommitNotice(1, 7).uid


def test_vote_messages():
    rv = RequestVote(1, 0)
    vr = VoteReply(1, 3, granted=True)
    assert rv.size_bytes == HEADER_BYTES
    assert vr.granted is True
    assert rv.uid != RequestVote(1, 0, attempt=1).uid


def test_log_entry_equality():
    assert _entry(1) == _entry(1)
    assert _entry(1) != _entry(2)
