"""Sliding Bloom filter duplicate detector.

The paper (§3.3) notes the recently-seen cache "could be obtained adopting
other approaches, such as a sliding Bloom filter". This module provides that
alternative with the same ``register`` interface as
:class:`repro.gossip.cache.RecentlySeenCache`, so the two are drop-in
interchangeable (see the gossip ablation bench).

Two generations of plain Bloom filters are kept; inserts go to the current
generation, membership checks consult both, and the older generation is
discarded after a configured number of insertions — a standard sliding
scheme (Naor & Yogev). Bloom filters admit false positives: a fresh message
may be misclassified as duplicate with small probability, which for gossip
merely removes one redundant propagation path.
"""

import hashlib


class _BloomGeneration:
    __slots__ = ("bits", "num_bits", "inserted")

    def __init__(self, num_bits):
        self.bits = 0
        self.num_bits = num_bits
        self.inserted = 0

    def _positions(self, uid, num_hashes):
        digest = hashlib.blake2b(repr(uid).encode("utf-8"), digest_size=16).digest()
        value = int.from_bytes(digest, "big")
        for i in range(num_hashes):
            yield (value >> (i * 17)) % self.num_bits

    def add(self, uid, num_hashes):
        for pos in self._positions(uid, num_hashes):
            self.bits |= 1 << pos
        self.inserted += 1

    def contains(self, uid, num_hashes):
        bits = self.bits
        return all((bits >> pos) & 1 for pos in self._positions(uid, num_hashes))


class SlidingBloomFilter:
    """Duplicate detector with bounded memory and a sliding window."""

    __slots__ = ("num_bits", "num_hashes", "generation_size",
                 "_current", "_previous", "registered", "hits")

    def __init__(self, num_bits=1 << 17, num_hashes=4, generation_size=20_000):
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.generation_size = generation_size
        self._current = _BloomGeneration(num_bits)
        self._previous = None
        self.registered = 0
        self.hits = 0

    def __contains__(self, uid):
        if self._current.contains(uid, self.num_hashes):
            return True
        if self._previous is not None:
            return self._previous.contains(uid, self.num_hashes)
        return False

    def register(self, uid):
        """Record ``uid``; returns True if it looked fresh."""
        if uid in self:
            self.hits += 1
            return False
        self._current.add(uid, self.num_hashes)
        self.registered += 1
        if self._current.inserted >= self.generation_size:
            self._previous = self._current
            self._current = _BloomGeneration(self.num_bits)
        return True
