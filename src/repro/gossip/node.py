"""The gossip layer of one process (paper Figure 2).

Architecture per the paper's §3.3:

* a *broadcast* path — locally broadcast messages are registered in the
  recently-seen cache, delivered to the application, and added to every
  peer's send queue;
* a *receive* path — messages arriving from a peer go through the
  duplication check; fresh messages are delivered and added to all send
  queues except the origin peer's;
* one *send routine per peer* — drains that peer's send queue onto the
  link, applying the semantic ``validate`` filter per message and, when the
  queue holds several pending messages, the semantic ``aggregate`` hook.

Saturation model: all application-visible work (duplicate checks, delivery,
forward fan-out) is charged to a single per-process CPU server; each link
additionally charges transmission time. See DESIGN.md §5.2.
"""

from collections import deque

from repro.sim.actors import Actor
from repro.sim.server import make_server, noop as _noop
from repro.gossip.cache import RecentlySeenCache
from repro.gossip.hooks import SemanticHooks


class GossipCosts:
    """CPU service-time model of the gossip layer.

    Times are in seconds per operation. They are deliberately explicit
    configuration — they play the role of the paper's t2.medium CPUs and
    determine where the latency knees fall.
    """

    __slots__ = ("recv_fresh_s", "recv_dup_s", "send_per_peer_s", "hook_s")

    def __init__(self, recv_fresh_s=15e-6, recv_dup_s=3e-6,
                 send_per_peer_s=4e-6, hook_s=1e-6):
        self.recv_fresh_s = recv_fresh_s
        self.recv_dup_s = recv_dup_s
        self.send_per_peer_s = send_per_peer_s
        self.hook_s = hook_s


class GossipStats:
    """Counters matching the quantities reported in the paper's §4.3."""

    __slots__ = (
        "broadcasts", "received", "duplicates", "delivered", "forwarded",
        "filtered", "aggregated_in", "aggregated_saved", "disaggregated",
        "send_queue_drops",
    )

    def __init__(self):
        self.broadcasts = 0          # locally broadcast messages
        self.received = 0            # messages arriving over links (pre-dedup)
        self.duplicates = 0          # discarded by the duplication check
        self.delivered = 0           # handed to the application
        self.forwarded = 0           # enqueued towards peers (pre-filter)
        self.filtered = 0            # dropped by semantic validate()
        self.aggregated_in = 0       # originals consumed by aggregation
        self.aggregated_saved = 0    # transmissions avoided by aggregation
        self.disaggregated = 0       # originals reconstructed on receipt
        self.send_queue_drops = 0    # pending sends dropped (queue full)

    def duplicate_fraction(self):
        """Fraction of received messages discarded as duplicates."""
        if self.received == 0:
            return 0.0
        return self.duplicates / self.received


class _PeerSender:
    """Send routine for one peer: queue + validate/aggregate + pacing.

    Pacing is event-free on the fast path: a jitter-free link reports the
    serialisation completion at transmit time, so the sender tracks the
    instant the link frees (``_free_at``) arithmetically and arms a single
    wake-up event only when there is follow-on work to pace — the rest of
    a validated batch, or messages that queued mid-flight and must be
    validated/aggregated at the instant the link frees (the same instant
    the old per-message ``on_wire`` callback ran). A transmission with
    nothing behind it — the common case below saturation — schedules no
    pacing event at all. Links that cannot precompute completions
    (jittered, or event-per-job legacy servers) fall back to the two-event
    path, where ``on_wire`` plays the wake-up's role.
    """

    __slots__ = ("node", "sim", "peer_id", "link", "queue", "pending",
                 "capacity", "_free_at", "_wakeup_armed", "_wakeup_seq",
                 "_wakeup_event", "_round")

    def __init__(self, node, peer_id, link, capacity):
        self.node = node
        self.sim = node.sim
        self.peer_id = peer_id
        self.link = link
        self.queue = deque()
        self.pending = deque()   # current validated/aggregated batch
        self.capacity = capacity
        self._free_at = 0.0      # link serialises our traffic until then
        self._wakeup_armed = False   # a wake-up (or on_wire) is outstanding
        self._wakeup_seq = 0     # reserved tie-break slot for the wake-up
        self._wakeup_event = None    # handle, valid only while armed
        self._round = []         # (completion, seq) per chained message

    @property
    def busy(self):
        """True while a batch is being serialised or paced."""
        return self._wakeup_armed or self.sim.now < self._free_at

    def enqueue(self, payload):
        queue = self.queue
        if self.capacity is not None and len(queue) >= self.capacity:
            self.node.stats.send_queue_drops += 1
            return
        if self._wakeup_armed:
            queue.append(payload)   # the outstanding wake-up will pump it
            return
        if self.sim.now < self._free_at:
            # Link busy with nothing paced behind it yet: wake exactly
            # when it frees to batch up whatever has queued by then. The
            # reserved slot makes the wake-up fire in the heap position
            # the reference implementation gave its completion event.
            queue.append(payload)
            self._wakeup_armed = True
            self._wakeup_event = self.sim.push_event(
                self._free_at, self._wakeup, (), self._wakeup_seq)
            return
        if not queue and not self.pending:
            # Idle-link single message — the dominant case below
            # saturation — goes straight to the wire: no deque round
            # trip, no pump frame. Identical validate/charge/transmit
            # sequence to the single-message pump path.
            node = self.node
            if node.validate_default or node.hooks.validate(payload,
                                                            self.peer_id):
                if node.hooks_charged:
                    self._charge_hooks(1)
                # _transmit, inlined (nothing is queued behind this
                # message, so the trailing wake-up arming there is dead):
                # reserve the wake-up slot before the transmit, exactly
                # where the event-per-job reference allocated its
                # completion event.
                sim = self.sim
                seq = sim.reserve_slot()
                completion = self.link.transmit_timed(payload)
                if completion is None:
                    self._wakeup_armed = True
                    self.link.transmit(payload, on_wire=self._paced_wakeup)
                else:
                    self._wakeup_seq = seq
                    self._free_at = completion
            else:
                node.stats.filtered += 1
                if node.obs is not None:
                    node.obs.gossip_filtered(node.process_id, self.peer_id,
                                             payload)
                self._charge_hooks(1)
            return
        queue.append(payload)
        self._pump()

    def _pump(self):
        """Prepare the next batch (validate + aggregate) and start sending."""
        node = self.node
        hooks = node.hooks
        queue = self.queue
        if not self.pending and len(queue) == 1:
            # Single queued message — the overwhelmingly common case below
            # saturation — skips the batch-list machinery: same validate,
            # same hook charge, same transmit, no list copies.
            payload = queue.popleft()
            if node.validate_default or hooks.validate(payload, self.peer_id):
                if node.hooks_charged:
                    self._charge_hooks(1)
                self._transmit(payload)
            else:
                node.stats.filtered += 1
                if node.obs is not None:
                    node.obs.gossip_filtered(node.process_id, self.peer_id,
                                             payload)
                self._charge_hooks(1)
            return
        examined = 0   # messages run through validate/aggregate this pump
        while not self.pending:
            if not self.queue:
                self._charge_hooks(examined)
                return
            batch = list(self.queue)
            self.queue.clear()
            if node.validate_default:
                # Default validate admits everything; skip the per-message
                # calls (classic gossip's saturated batch path).
                kept = batch
            else:
                kept = []
                for payload in batch:
                    if hooks.validate(payload, self.peer_id):
                        kept.append(payload)
                    else:
                        node.stats.filtered += 1
                        if node.obs is not None:
                            node.obs.gossip_filtered(node.process_id,
                                                     self.peer_id, payload)
            examined += len(batch)
            if len(kept) > 1:
                examined += len(kept)
                if not node.aggregate_default:
                    before = len(kept)
                    kept = hooks.aggregate(kept, self.peer_id)
                    saved = before - len(kept)
                    if saved > 0:
                        node.stats.aggregated_in += saved + sum(
                            1 for p in kept if p.aggregated
                        )
                        node.stats.aggregated_saved += saved
                        if node.obs is not None:
                            for p in kept:
                                if p.aggregated:
                                    node.obs.gossip_aggregated(
                                        node.process_id, self.peer_id, p,
                                        max(0, len(getattr(p, "senders", ())) - 1))
            self.pending.extend(kept)
        self._charge_hooks(examined)
        if self.link.fast_path:
            self._send_round()
        else:
            self._transmit(self.pending.popleft())

    def _send_round(self):
        """Commit the whole validated batch to the wire arithmetically.

        On a fast-path link every serialisation completion in the round
        is known now (FIFO chain: each message starts when its
        predecessor finishes), so the entire batch is chained onto the
        transmission server in one pass — zero wake-up events instead of
        one per message. Each message's tie-break slot is still reserved
        immediately before its transmit, exactly where the per-message
        pump reserved it, so a wake-up lazily armed later (by an enqueue
        mid-round) fires in the reference's heap position at the
        reference's instant: the end of the round, which is when the
        per-message pump first looked at the queue again.
        """
        sim = self.sim
        reserve = sim.reserve_slot
        chain = self.link.transmit_chained
        pending = self.pending
        round_tail = self._round
        round_tail.clear()
        seq = self._wakeup_seq
        completion = self._free_at
        while pending:
            seq = reserve()
            completion = chain(pending.popleft())
            round_tail.append((completion, seq))
        self._wakeup_seq = seq
        self._free_at = completion

    def _charge_hooks(self, examined):
        """Charge ``hook_s`` CPU per message examined by validate/aggregate.

        Only non-default hooks are charged: the no-op base implementation
        models classic gossip, whose send path does no semantic work, and
        charging it would skew the gossip-vs-semantic comparison. The
        charge occupies the node's CPU server without delaying this batch
        (the hook ran inline); queued CPU work behind it is what pays.
        """
        node = self.node
        if examined == 0 or not node.hooks_charged:
            return
        service = examined * node.costs.hook_s
        if service > 0.0:
            node._cpu_acct(service)

    def _transmit(self, payload):
        sim = self.sim
        # Reserve the wake-up's tie-breaking slot *before* the transmit,
        # where the event-per-job reference allocated its per-transmission
        # completion event: a wake-up armed later (possibly by an enqueue
        # mid-flight) then fires in exactly the reference's heap position
        # relative to other events landing on the completion instant —
        # including the arrival event a zero-latency link would put there.
        seq = sim.reserve_slot()
        completion = self.link.transmit_timed(payload)
        if completion is None:
            # Two-event reference path (jittered link or legacy server):
            # the serialisation completion is not precomputable, so the
            # on_wire callback paces instead. The reservation goes unused
            # — a harmless gap in the sequence counter.
            self._wakeup_armed = True
            self.link.transmit(payload, on_wire=self._paced_wakeup)
            return
        self._wakeup_seq = seq
        self._free_at = completion
        if (self.pending or self.queue) and not self._wakeup_armed:
            self._wakeup_armed = True
            self._wakeup_event = sim.push_event(completion, self._wakeup,
                                                (), seq)

    def _wakeup(self):
        self._wakeup_armed = False
        self._wakeup_event = None
        if self.sim.now < self._free_at:
            # The link was re-busied at this very instant (an enqueue at
            # the completion time pumped first); re-arm for the new
            # completion if there is still work to pace.
            if self.pending or self.queue:
                self._wakeup_armed = True
                self._wakeup_event = self.sim.push_event(
                    self._free_at, self._wakeup, (), self._wakeup_seq)
            return
        self._resume()

    def _paced_wakeup(self):
        self._wakeup_armed = False
        self._wakeup_event = None
        self._free_at = self.sim.now   # the link just freed
        self._resume()

    def _resume(self):
        if self.pending:
            self._transmit(self.pending.popleft())
        else:
            self._pump()

    def abort_round(self):
        """Withdraw the committed-but-unserialised tail of the round.

        Crash semantics: the per-message reference pump never submitted
        messages it had not reached when the node crashed, so a batched
        round's chain entries beyond the message in service are
        un-committed (that message is on the wire and still arrives, as
        in the reference). The pacing state rolls back to the in-service
        message — including re-targeting a lazily-armed wake-up to the
        instant and reserved slot the reference's wake-up would occupy,
        so a post-recovery enqueue pumps at the reference's instant.
        """
        removed = self.link.abort_pending_chain()
        if not removed:
            return
        round_tail = self._round
        del round_tail[-removed:]
        completion, seq = round_tail[-1]
        self._free_at = completion
        self._wakeup_seq = seq
        if self._wakeup_armed and self._wakeup_event is not None:
            self.sim.cancel(self._wakeup_event)
            self._wakeup_event = self.sim.push_event(
                completion, self._wakeup, (), seq)


class GossipNode(Actor):
    """Push-gossip layer of one process.

    Slotted: every receive touches half a dozen attributes, and flat
    storage keeps those loads off the instance dict. Subclasses that add
    state (the pull strategies) simply omit ``__slots__`` and get a dict
    for their extras; the hot base attributes stay slotted either way.
    """

    __slots__ = (
        "process_id", "transport", "costs", "deliver", "cpu",
        "_cpu_submit", "_cpu_acct", "hooks_charged", "validate_default",
        "aggregate_default", "stats", "obs", "alive", "_senders",
        "_send_queue_capacity", "_fwd_pairs", "_fanout", "_svc_broadcast",
        "_svc_receive", "_hooks", "_cache", "_register",
    )

    def __init__(self, sim, process_id, transport, costs=None, hooks=None,
                 cache=None, deliver=None, cpu=None, send_queue_capacity=None):
        """
        Parameters
        ----------
        transport:
            The process's :class:`repro.net.transport.Transport`; its links
            carry gossip traffic and its receive callback is claimed here.
        hooks:
            :class:`SemanticHooks`; defaults to the no-op implementation
            (classic gossip).
        cache:
            Duplicate detector (recently-seen cache or sliding Bloom
            filter); defaults to a :class:`RecentlySeenCache`.
        deliver:
            ``deliver(payload)`` callback into the application (consensus).
        cpu:
            Optional shared :class:`FifoServer`; one is created if absent.
        """
        super().__init__(sim, "gossip-{}".format(process_id))
        self.process_id = process_id
        self.transport = transport
        self.costs = costs or GossipCosts()
        self.hooks = hooks or SemanticHooks()     # property: sets flags
        self.cache = (cache if cache is not None  # property: binds probe
                      else RecentlySeenCache())
        self.deliver = deliver
        self.cpu = cpu or make_server(sim)
        #: Fire-and-forget CPU submission for the receive/broadcast hot
        #: path. ``submit_timed`` (virtual-time servers) skips the
        #: bool-wrapping frame of ``submit``; servers without it (the
        #: event-per-job reference) fall back to ``submit``. The return
        #: value is never used at these call sites.
        self._cpu_submit = getattr(self.cpu, "submit_timed", None) or self.cpu.submit
        #: Accounting-only CPU charge (no callback): virtual-time servers
        #: provide ``submit_acct`` (no varargs packing, no callback
        #: checks); the event-per-job reference falls back to a ``noop``
        #: submission — exactly the call the old code made, so the A/B
        #: discipline is preserved.
        cpu_acct = getattr(self.cpu, "submit_acct", None)
        if cpu_acct is None:
            cpu_acct = self._make_legacy_acct()
        self._cpu_acct = cpu_acct
        #: Whether hook CPU time (``costs.hook_s``) is charged on the send
        #: path. Decided once against the hooks installed at construction,
        #: so observational wrappers attached later (e.g. the safety
        #: monitor's CheckedHooks) cannot perturb run timing.
        self.hooks_charged = (
            type(self.hooks).validate is not SemanticHooks.validate
            or type(self.hooks).aggregate is not SemanticHooks.aggregate
        )
        self.stats = GossipStats()
        #: Tracer installed by ``obs=`` (repro.obs); None in untraced runs.
        self.obs = None
        self.alive = True
        self._senders = {}
        self._send_queue_capacity = send_queue_capacity
        #: Flat forward fan-out: a tuple of ``(peer_id, sender)`` pairs in
        #: peer-insertion order plus precomputed CPU service times, rebuilt
        #: whenever membership/overlay repair changes the peer set.
        self._fwd_pairs = ()
        self._fanout = 0
        self._svc_broadcast = self.costs.recv_fresh_s
        self._svc_receive = self.costs.recv_fresh_s
        transport.on_receive(self._on_link_receive)

    def _make_legacy_acct(self):
        submit = self._cpu_submit

        def cpu_acct(service):
            submit(service, _noop)

        return cpu_acct

    @property
    def hooks(self):
        return self._hooks

    @hooks.setter
    def hooks(self, hooks):
        # Refresh the per-hook defaultness flags on every swap (safety
        # monitor wrappers, test doubles): the default validate admits
        # everything and the default aggregate is the identity, so the
        # hot path skips those calls entirely when the flag is set.
        # ``hooks_charged`` is deliberately NOT refreshed — the CPU-charge
        # decision is pinned at construction so observational wrappers
        # cannot perturb run timing.
        self._hooks = hooks
        self.validate_default = type(hooks).validate is SemanticHooks.validate
        self.aggregate_default = (
            type(hooks).aggregate is SemanticHooks.aggregate)

    @property
    def cache(self):
        return self._cache

    @cache.setter
    def cache(self, cache):
        # Rebind the dedup probe on every swap: ``register_payload``
        # interns the uid once and probes by dense id on array-backed
        # caches; duck-typed caches exposing only ``register(uid)`` get a
        # shim. The hot path always goes through ``self._register``.
        self._cache = cache
        register_payload = getattr(cache, "register_payload", None)
        if register_payload is None:
            register = cache.register

            def register_payload(payload):
                return register(payload.uid)
        self._register = register_payload

    # -- wiring ----------------------------------------------------------

    def start(self):
        """Begin periodic activity; a no-op for plain push gossip."""

    def stop(self):
        """Stop periodic activity; a no-op for plain push gossip."""

    def crash(self):
        """Stop participating: drop inbound traffic, lose queued sends.

        A batched round committed to a link is rolled back to the message
        in service (see :meth:`_PeerSender.abort_round`) — matching the
        per-message pump, which would simply never have transmitted the
        rest of the round.
        """
        self.alive = False
        for sender in self._senders.values():
            sender.queue.clear()
            sender.pending.clear()
            sender.abort_round()

    def recover(self):
        """Resume participation (the dedup cache survived on purpose:
        re-receiving old messages is harmless either way)."""
        self.alive = True

    def add_peer(self, peer_id):
        """Register a peer reachable through the transport's link."""
        link = self.transport.link_to(peer_id)
        self._senders[peer_id] = _PeerSender(
            self, peer_id, link, self._send_queue_capacity
        )
        self._rebuild_forward()

    def remove_peer(self, peer_id):
        """Drop a peer (overlay repair); queued sends to it are lost."""
        self._senders.pop(peer_id, None)
        self._rebuild_forward()

    def _rebuild_forward(self):
        """Recompute the flat fan-out state after a peer-set change.

        ``_fwd_pairs`` mirrors ``_senders.items()`` (same insertion order,
        so the forward loop enqueues in exactly the dict-iteration order
        the reference used); the service times are the same arithmetic the
        per-receive code used to evaluate, hoisted to membership changes.
        """
        self._fwd_pairs = tuple(self._senders.items())
        fanout = len(self._fwd_pairs)
        self._fanout = fanout
        costs = self.costs
        self._svc_broadcast = (
            costs.recv_fresh_s + fanout * costs.send_per_peer_s)
        recv_fanout = fanout - 1
        if recv_fanout < 0:
            recv_fanout = 0
        self._svc_receive = (
            costs.recv_fresh_s + recv_fanout * costs.send_per_peer_s)

    def peers(self):
        return list(self._senders)

    # -- broadcast path ----------------------------------------------------

    def broadcast(self, payload):
        """Asynchronously disseminate ``payload`` to all processes."""
        if not self.alive:
            return
        self.stats.broadcasts += 1
        if not self._register(payload):
            return  # re-broadcast of a known message: nothing to do
        self._cpu_submit(self._svc_broadcast, self._complete_broadcast,
                         payload)

    def _complete_broadcast(self, payload):
        self._deliver(payload)
        self._forward(payload, exclude=None)

    # -- receive path ------------------------------------------------------

    def _on_link_receive(self, src, payload):
        if not self.alive:
            return
        stats = self.stats
        stats.received += 1
        costs = self.costs
        if not payload.aggregated:
            # Single-part fast path: no part list, no service accumulator
            # loop — identical charges and pushes, common-case receive.
            obs = self.obs
            if self._register(payload):
                if obs is not None:
                    obs.gossip_receive(self.process_id, src, payload, True)
                self._cpu_submit(self._svc_receive,
                                 self._complete_receive_one, payload, src)
            else:
                stats.duplicates += 1
                if obs is not None:
                    obs.gossip_receive(self.process_id, src, payload, False)
                self._cpu_acct(costs.recv_dup_s)
            return
        parts = self.hooks.disaggregate(payload)
        self.stats.disaggregated += len(parts)
        register = self._register
        fresh = []
        service = 0.0
        duplicates = 0
        obs = self.obs
        for part in parts:
            if register(part):
                fresh.append(part)
                service += costs.recv_fresh_s
                if obs is not None:
                    obs.gossip_receive(self.process_id, src, part, True)
            else:
                duplicates += 1
                service += costs.recv_dup_s
                if obs is not None:
                    obs.gossip_receive(self.process_id, src, part, False)
        # Count duplicates per part (matching ``disaggregated``), so an
        # aggregated bundle of k already-seen messages is k duplicates —
        # the paper's §4.3 per-message semantics.
        self.stats.duplicates += duplicates
        if not fresh:
            self._cpu_acct(service)
            return
        fanout = self._fanout - 1
        if fanout < 0:
            fanout = 0
        service += len(fresh) * fanout * costs.send_per_peer_s
        self._cpu_submit(service, self._complete_receive, fresh, src)

    def _complete_receive_one(self, payload, src):
        self._deliver(payload)
        self._forward(payload, exclude=src)

    def _complete_receive(self, fresh, src):
        for part in fresh:
            self._deliver(part)
            self._forward(part, exclude=src)

    # -- helpers -----------------------------------------------------------

    def _deliver(self, payload):
        self.stats.delivered += 1
        if self.deliver is not None:
            self.deliver(payload)

    def _forward(self, payload, exclude):
        forwarded = 0
        for peer_id, sender in self._fwd_pairs:
            if peer_id == exclude:
                continue
            forwarded += 1
            sender.enqueue(payload)
        self.stats.forwarded += forwarded
