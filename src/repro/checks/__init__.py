"""Static and dynamic determinism/correctness checks for the reproduction.

Three legs (see docs/static-analysis.md):

* :mod:`repro.checks.linter` — an AST-based determinism linter (ten
  rules: ambient state, tie-break hygiene, executor safety) that flags
  nondeterminism hazards before they can break the simulator's
  same-seed/same-run guarantee;
* :mod:`repro.checks.monitor` — an online :class:`SafetyMonitor` that
  checks Paxos safety invariants (agreement, ballot monotonicity,
  quorum-backed decisions, aggregation reversibility) while a deployment
  runs;
* :mod:`repro.checks.auditor` / :mod:`repro.checks.race` — a dynamic
  :class:`RaceAuditor` recording same-timestamp tie groups, reserved-slot
  provenance and per-stream RNG draw counts, plus the double-run
  ``repro check --race`` harness that executes committed scenarios under
  different ``PYTHONHASHSEED`` values and localizes the first divergent
  event.

All are exposed through ``python -m repro check`` and, for the linter
alone, ``python -m repro.checks``.
"""

from repro.checks.auditor import RaceAuditor
from repro.checks.linter import (
    Finding,
    lint_file,
    lint_paths,
    lint_paths_detailed,
    lint_source,
    lint_source_detailed,
)
from repro.checks.monitor import (
    CheckedHooks,
    InvariantViolation,
    SafetyMonitor,
    Violation,
)
from repro.checks.race import race_check, race_scenarios
from repro.checks.rules import RULES, Rule, get_rule

__all__ = [
    "CheckedHooks",
    "Finding",
    "InvariantViolation",
    "RULES",
    "RaceAuditor",
    "Rule",
    "SafetyMonitor",
    "Violation",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_paths_detailed",
    "lint_source",
    "lint_source_detailed",
    "race_check",
    "race_scenarios",
]
