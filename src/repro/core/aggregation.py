"""Semantic aggregation rule for Paxos (paper §3.2).

A single, reversible rule: Phase 2b messages pending for the same peer that
refer to the same instance, round and value — so they differ only by their
senders — are replaced by one :class:`repro.paxos.messages.Aggregated2b`
carrying the union of the senders. The aggregated message takes the list
position of the first message it replaces; messages not prone to
aggregation are left untouched and keep their relative order. Aggregated
votes received from elsewhere participate too ("they can be semantically
aggregated again").

The rule is opportunistic: it only does anything when the send routine has
accumulated several pending messages, i.e. under moderate-to-high load —
and, unlike batching, it never delays a send (paper §3.2).
"""

from repro.paxos.messages import Aggregated2b, Phase2b


def _vote_key_and_senders(payload):
    """(group key, senders) for vote messages; (None, None) otherwise."""
    kind = type(payload)
    if kind is Phase2b:
        # uid = ("2B", instance, round, sender, attempt)
        return ((payload.instance, payload.round, payload.value_id,
                 payload.uid[4]), (payload.sender,))
    if kind is Aggregated2b:
        return ((payload.instance, payload.round, payload.value_id,
                 payload.attempt), payload.senders)
    return (None, None)


class SemanticAggregator:
    """Groups identical pending votes into multi-sender votes."""

    __slots__ = ("votes_absorbed", "aggregates_built")

    def __init__(self):
        self.votes_absorbed = 0
        self.aggregates_built = 0

    def aggregate(self, payloads, peer_id):
        """Return the replacement send list (order-preserving)."""
        keys = []
        groups = {}
        for payload in payloads:
            key, senders = _vote_key_and_senders(payload)
            keys.append(key)
            if key is None:
                continue
            group = groups.get(key)
            if group is None:
                groups[key] = [set(senders), 1]
            else:
                group[0].update(senders)
                group[1] += 1

        if not any(group[1] >= 2 for group in groups.values()):
            return payloads

        result = []
        emitted = set()
        for payload, key in zip(payloads, keys):
            if key is None:
                result.append(payload)
                continue
            senders, count = groups[key]
            if count < 2:
                result.append(payload)
                continue
            if key in emitted:
                continue  # absorbed into the aggregate emitted earlier
            emitted.add(key)
            instance, round_, value_id, attempt = key
            result.append(Aggregated2b(instance, round_, value_id, senders, attempt))
            self.aggregates_built += 1
            self.votes_absorbed += count - 1
        return result

    def disaggregate(self, payload):
        """Reconstruct the original votes (reversible rule)."""
        if type(payload) is Aggregated2b:
            return payload.disaggregate()
        return [payload]
