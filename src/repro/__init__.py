"""repro — reproduction of "Gossip Consensus" (Middleware '21).

A deterministic discrete-event reimplementation of the paper's full system:
classic multi-instance Paxos, a push-gossip communication substrate, and
the paper's contribution — **Semantic Gossip**, a gossip layer augmented
with consensus-aware *semantic filtering* and *semantic aggregation* —
together with the complete experimental harness (three deployment setups,
open-loop regional clients, fault injection, and overlay sweeps).

Quickstart::

    from repro import ExperimentConfig, run_experiment

    report = run_experiment(ExperimentConfig(setup="semantic", n=13, rate=50))
    print(report.avg_latency_s, report.throughput)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.runtime.config import ExperimentConfig, SETUPS
from repro.runtime.runner import run_experiment, run_deployment
from repro.runtime.parallel import run_experiments, parallel_map
from repro.runtime.metrics import MetricsReport
from repro.runtime.sweep import (
    workload_sweep,
    find_saturation_point,
    overlay_sweep,
    select_median_overlay,
    overlay_median_rtt_ms,
    loss_grid,
    fault_grid,
    SweepPoint,
    OverlayPoint,
)
from repro.core.semantics import PaxosSemantics
from repro.core.filtering import SemanticFilter
from repro.core.aggregation import SemanticAggregator
from repro.core.raft_semantics import RaftSemantics
from repro.gossip.hooks import SemanticHooks
from repro.gossip.node import GossipNode, GossipCosts
from repro.gossip.strategies import PullGossipNode, PushPullGossipNode
from repro.paxos.process import PaxosProcess, Communicator
from repro.paxos.spaxos import SPaxosProcess, ValueRef
from repro.raft.process import RaftProcess
from repro.runtime.crashes import CrashSchedule, CrashController
from repro.net.faults.events import (
    FaultPlan,
    Partition,
    Heal,
    LinkLoss,
    BurstLoss,
    ClearBurstLoss,
    Degrade,
    GrayFailure,
    Crash,
    RegionOutage,
    Join,
    Leave,
    Rejoin,
)
from repro.membership import MembershipConfig, MembershipService
from repro.sim.kernel import Simulator

__all__ = [
    "ExperimentConfig",
    "SETUPS",
    "run_experiment",
    "run_deployment",
    "run_experiments",
    "parallel_map",
    "MetricsReport",
    "workload_sweep",
    "find_saturation_point",
    "overlay_sweep",
    "select_median_overlay",
    "overlay_median_rtt_ms",
    "loss_grid",
    "fault_grid",
    "SweepPoint",
    "OverlayPoint",
    "PaxosSemantics",
    "SemanticFilter",
    "SemanticAggregator",
    "RaftSemantics",
    "SemanticHooks",
    "GossipNode",
    "GossipCosts",
    "PullGossipNode",
    "PushPullGossipNode",
    "PaxosProcess",
    "SPaxosProcess",
    "ValueRef",
    "RaftProcess",
    "Communicator",
    "CrashSchedule",
    "CrashController",
    "FaultPlan",
    "Partition",
    "Heal",
    "LinkLoss",
    "BurstLoss",
    "ClearBurstLoss",
    "Degrade",
    "GrayFailure",
    "Crash",
    "RegionOutage",
    "Join",
    "Leave",
    "Rejoin",
    "MembershipConfig",
    "MembershipService",
    "Simulator",
]
