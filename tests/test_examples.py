"""Smoke tests for the example scripts (the fast ones).

The heavier examples (multi_domain_ledger, failure_injection) exercise the
same code paths as the integration tests and benchmarks; running them here
would only slow the suite down.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def _run_example(name, capsys):
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_custom_semantics_example(capsys):
    out = _run_example("custom_semantics.py", capsys)
    assert "converged=True" in out
    assert "traffic saved" in out


def test_quickstart_example(capsys):
    out = _run_example("quickstart.py", capsys)
    for setup in ("baseline", "gossip", "semantic"):
        assert setup in out
    assert "avg lat (ms)" in out


def test_all_examples_importable():
    """Every example at least parses and imports cleanly."""
    for path in sorted(EXAMPLES.glob("*.py")):
        source = path.read_text()
        compile(source, str(path), "exec")
