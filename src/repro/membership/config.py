"""Membership subsystem configuration.

A :class:`MembershipConfig` attached to an
:class:`repro.runtime.config.ExperimentConfig` activates the membership
layer: gossip-piggybacked heartbeats, suspicion-based failure detection,
join/leave/rejoin handling with overlay repair, and heartbeat-driven
leader election. Leaving ``ExperimentConfig.membership`` at ``None`` keeps
the layer entirely out of the run.

Timing defaults are sized for the paper's WAN latency model (tens to ~150
milliseconds one way): a heartbeat period several times the typical hop
latency, a suspicion timeout a few periods long, and a dead timeout with
enough slack that multi-hop gossip propagation cannot alone kill a member.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class MembershipConfig:
    """Tunable knobs of the dynamic-membership layer."""

    #: Seconds between one member's liveness heartbeats.
    heartbeat_interval: float = 0.06
    #: Heartbeat silence after which an observer suspects a member.
    suspicion_timeout: float = 0.25
    #: Heartbeat silence after which an observer declares a member dead
    #: (and broadcasts a dead report). Must exceed ``suspicion_timeout``.
    dead_timeout: float = 0.5
    #: Process ids forming the cluster at t=0; ``None`` means all ``n``
    #: processes. Ids outside this set start dormant and enter via ``Join``.
    initial_members: Optional[tuple] = None
    #: How many low-id alive members act as seed nodes a joiner registers
    #: with (its first overlay edges point at them).
    seed_count: int = 1
    #: Edges a joining process opens; ``None`` uses the experiment's
    #: effective overlay ``k``.
    join_degree: Optional[int] = None
    #: Base delay before the first election attempt after the leader is
    #: declared dead (or leaves); grows by ``election_backoff_factor`` per
    #: failed attempt, capped at ``election_backoff_max``.
    election_backoff: float = 0.25
    election_backoff_factor: float = 2.0
    election_backoff_max: float = 1.0
    #: Uniform jitter added to every election delay (draws from the
    #: ``"election"`` named stream), de-synchronizing election storms.
    election_jitter: float = 0.05

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.suspicion_timeout <= self.heartbeat_interval:
            raise ValueError(
                "suspicion_timeout must exceed the heartbeat interval")
        if self.dead_timeout <= self.suspicion_timeout:
            raise ValueError("dead_timeout must exceed suspicion_timeout")
        if self.initial_members is not None:
            members = tuple(self.initial_members)
            if len(set(members)) != len(members):
                raise ValueError("initial_members contains duplicates")
            if not members:
                raise ValueError("initial_members must not be empty")
            # Normalize to a sorted tuple so configs compare and fingerprint
            # independently of declaration order.
            object.__setattr__(self, "initial_members",
                               tuple(sorted(members)))
        if self.seed_count < 1:
            raise ValueError("seed_count must be at least 1")
        if self.join_degree is not None and self.join_degree < 1:
            raise ValueError("join_degree must be at least 1")
        if self.election_backoff <= 0:
            raise ValueError("election_backoff must be positive")
        if self.election_backoff_factor < 1.0:
            raise ValueError("election_backoff_factor must be >= 1")
        if self.election_backoff_max < self.election_backoff:
            raise ValueError(
                "election_backoff_max must be >= election_backoff")
        if self.election_jitter < 0:
            raise ValueError("election_jitter must be non-negative")

    def members_at_start(self, n):
        """The sorted tuple of initial member ids for a cluster of ``n``."""
        if self.initial_members is None:
            return tuple(range(n))
        return self.initial_members
