"""Tests for the Raft log."""

from repro.paxos.messages import Value
from repro.raft.log import RaftLog
from repro.raft.messages import LogEntry


def _entry(index, term=1, vid=None):
    return LogEntry(term, index, Value(vid or ("v", index), 0, 10))


def test_sequential_store_is_contiguous():
    log = RaftLog()
    assert log.store(_entry(1)) == [1]
    assert log.store(_entry(2)) == [2]
    assert log.contiguous_index == 2


def test_out_of_order_store_buffers():
    log = RaftLog()
    assert log.store(_entry(2)) == []
    assert log.contiguous_index == 0
    assert log.store(_entry(1)) == [1, 2]
    assert log.contiguous_index == 2


def test_duplicate_store_ignored():
    log = RaftLog()
    log.store(_entry(1))
    assert log.store(_entry(1)) == []


def test_higher_term_overwrites_conflict():
    log = RaftLog()
    log.store(_entry(1, term=1, vid="old"))
    log.store(_entry(1, term=2, vid="new"))
    assert log.entries[1].value.value_id == "new"


def test_lower_term_does_not_overwrite():
    log = RaftLog()
    log.store(_entry(1, term=2, vid="keep"))
    log.store(_entry(1, term=1, vid="stale"))
    assert log.entries[1].value.value_id == "keep"


def test_commit_watermark_monotone():
    log = RaftLog()
    assert log.advance_commit(3) is True
    assert log.advance_commit(2) is False
    assert log.commit_index == 3


def test_delivery_requires_commit_and_contiguity():
    log = RaftLog()
    log.store(_entry(2))
    log.advance_commit(2)
    assert log.pop_deliverable() == []       # gap at index 1
    assert log.gap_blocked == 2
    log.store(_entry(1))
    delivered = log.pop_deliverable()
    assert [e.index for e in delivered] == [1, 2]
    assert log.gap_blocked == 0


def test_delivery_stops_at_commit_watermark():
    log = RaftLog()
    for i in (1, 2, 3):
        log.store(_entry(i))
    log.advance_commit(2)
    assert [e.index for e in log.pop_deliverable()] == [1, 2]
    log.advance_commit(3)
    assert [e.index for e in log.pop_deliverable()] == [3]


def test_term_of_and_last_index():
    log = RaftLog()
    assert log.term_of(1) == 0
    assert log.last_index == 0
    log.store(_entry(5, term=3))
    assert log.term_of(5) == 3
    assert log.last_index == 5
