"""Tests for directed links: timing, queueing, drops, loss."""

import pytest

from repro.net.channel import DirectedLink, LinkConfig
from repro.net.message import RawPayload


def _payload(uid="m", size=100):
    return RawPayload(uid, size)


def _link(sim, deliver, latency=0.01, loss_hook=None, **config_kwargs):
    config = LinkConfig(**config_kwargs)
    return DirectedLink(sim, 0, 1, latency, config, deliver, loss_hook)


def test_delivery_after_tx_plus_latency(sim):
    seen = []
    link = _link(sim, lambda src, p: seen.append((src, p.uid, sim.now)),
                 latency=0.010, per_message_s=0.001, per_byte_s=0.0)
    link.transmit(_payload())
    sim.run()
    assert seen == [(0, "m", pytest.approx(0.011))]


def test_per_byte_cost_charged(sim):
    seen = []
    link = _link(sim, lambda src, p: seen.append(sim.now),
                 latency=0.0, per_message_s=0.0, per_byte_s=1e-5)
    link.transmit(_payload(size=1000))
    sim.run()
    assert seen == [pytest.approx(0.01)]


def test_serialization_is_sequential(sim):
    """Two messages share the wire: second is delayed by the first's tx."""
    seen = []
    link = _link(sim, lambda src, p: seen.append((p.uid, sim.now)),
                 latency=0.0, per_message_s=0.001, per_byte_s=0.0)
    link.transmit(_payload("a"))
    link.transmit(_payload("b"))
    sim.run()
    assert seen == [("a", pytest.approx(0.001)), ("b", pytest.approx(0.002))]


def test_on_wire_fires_at_serialization_end(sim):
    events = []
    link = _link(sim, lambda src, p: events.append(("deliver", sim.now)),
                 latency=0.5, per_message_s=0.001, per_byte_s=0.0)
    link.transmit(_payload(), on_wire=lambda: events.append(("wire", sim.now)))
    sim.run()
    assert events[0] == ("wire", pytest.approx(0.001))
    assert events[1] == ("deliver", pytest.approx(0.501))


def test_queue_capacity_drops_and_counts(sim):
    link = _link(sim, lambda src, p: None,
                 per_message_s=1.0, queue_capacity=1)
    link.transmit(_payload("a"))   # in service
    link.transmit(_payload("b"))   # queued
    link.transmit(_payload("c"))   # dropped
    assert link.stats.dropped_queue == 1


def test_queue_drop_still_fires_on_wire(sim):
    """Senders pace on on_wire; a drop must not stall them."""
    fired = []
    link = _link(sim, lambda src, p: None,
                 per_message_s=1.0, queue_capacity=0)
    link.transmit(_payload("a"))
    link.transmit(_payload("b"), on_wire=lambda: fired.append("b"))
    assert fired == ["b"]


def test_loss_hook_drops_at_delivery(sim):
    seen = []
    link = _link(sim, lambda src, p: seen.append(p.uid),
                 loss_hook=lambda dst: True)
    link.transmit(_payload())
    sim.run()
    assert seen == []
    assert link.stats.dropped_loss == 1
    assert link.stats.delivered == 0


def test_loss_hook_receives_destination(sim):
    destinations = []

    def hook(dst):
        destinations.append(dst)
        return False

    link = _link(sim, lambda src, p: None, loss_hook=hook)
    link.transmit(_payload())
    sim.run()
    assert destinations == [1]


def test_stats_sent_and_bytes(sim):
    link = _link(sim, lambda src, p: None)
    link.transmit(_payload("a", size=10))
    link.transmit(_payload("b", size=20))
    sim.run()
    assert link.stats.sent == 2
    assert link.stats.bytes_sent == 30
    assert link.stats.delivered == 2


def test_jitter_spreads_delivery(sim):
    seen = []
    link = _link(sim, lambda src, p: seen.append(sim.now),
                 latency=0.010, per_message_s=0.0, per_byte_s=0.0,
                 jitter_s=0.005)
    for i in range(20):
        link.transmit(_payload("m{}".format(i)))
    sim.run()
    assert all(0.010 <= t <= 0.016 for t in seen)
    assert len(set(seen)) > 1  # jitter actually varied


def test_busy_and_queue_length(sim):
    link = _link(sim, lambda src, p: None, per_message_s=1.0)
    assert not link.busy
    link.transmit(_payload("a"))
    link.transmit(_payload("b"))
    assert link.busy
    assert link.queue_length == 1


def test_jitter_free_hop_schedules_single_event(sim):
    """The fast path: one kernel event per hop (the propagation arrival)."""
    link = _link(sim, lambda src, p: None,
                 latency=0.01, per_message_s=0.001, per_byte_s=0.0)
    before = sim.events_scheduled
    link.transmit(_payload())
    assert sim.events_scheduled == before + 1
    sim.run()
    assert link.stats.sent == 1
    assert link.stats.delivered == 1


def test_on_wire_hop_schedules_pacing_event(sim):
    """With on_wire the fast path adds exactly one pacing event."""
    link = _link(sim, lambda src, p: None,
                 latency=0.01, per_message_s=0.001, per_byte_s=0.0)
    before = sim.events_scheduled
    link.transmit(_payload(), on_wire=lambda: None)
    assert sim.events_scheduled == before + 2


def test_jittered_link_keeps_two_event_path(sim):
    """Jittered links must draw link-jitter at the serialisation completion
    (legacy order), so they stay on the event-per-hop path."""
    link = _link(sim, lambda src, p: None,
                 latency=0.01, per_message_s=0.001, per_byte_s=0.0,
                 jitter_s=0.005)
    before = sim.events_scheduled
    link.transmit(_payload())
    sim.run()
    assert sim.events_scheduled == before + 2
    assert link.stats.delivered == 1


def test_stats_sent_drained_at_observation(sim):
    """Fast-path sent/bytes counters must read as if counted at each
    message's serialisation completion, even mid-run."""
    link = _link(sim, lambda src, p: None,
                 latency=5.0, per_message_s=1.0, per_byte_s=0.0)
    link.transmit(_payload("a", size=10))
    link.transmit(_payload("b", size=20))
    assert link.stats.sent == 0
    sim.run(until=1.5)
    assert link.stats.sent == 1
    assert link.stats.bytes_sent == 10
    sim.run(until=2.5)
    assert link.stats.sent == 2
    assert link.stats.bytes_sent == 30
    assert link.stats.delivered == 0  # still propagating


def test_degrade_applies_to_not_yet_serialised_messages(sim):
    """The documented contract: only messages serialised after degrade()
    see the new parameters — including fast-path messages submitted
    before the call whose serialisation completes after it."""
    seen = []
    link = _link(sim, lambda src, p: seen.append((p.uid, sim.now)),
                 latency=0.01, per_message_s=0.001, per_byte_s=0.0)
    link.transmit(_payload("a"))
    link.transmit(_payload("b"))
    sim.schedule_at(0.0005, link.degrade, 10.0)
    sim.run()
    # Both serialise after t=0.0005, so both travel at the degraded 0.1s.
    assert seen == [("a", pytest.approx(0.101)), ("b", pytest.approx(0.102))]
    assert link.stats.sent == 2
    assert link.stats.delivered == 2


def test_degrade_restore_roundtrip_with_in_flight(sim):
    """restore() mid-flight must also convert pending fast-path messages."""
    seen = []
    link = _link(sim, lambda src, p: seen.append((p.uid, sim.now)),
                 latency=0.01, per_message_s=0.001, per_byte_s=0.0)
    link.degrade(10.0)
    link.transmit(_payload("a"))
    sim.schedule_at(0.0005, link.restore)
    sim.run()
    assert seen == [("a", pytest.approx(0.011))]
