"""Tests for coordinator failover (round change beyond startup).

The paper keeps a fixed coordinator; this extension exercises the part of
Paxos the fail-free deployment never reaches — a backup electing itself
with a higher round, re-running Phase 1, and re-proposing in-flight
values — over the actual gossip substrate with a crashed coordinator.
"""

import pytest

from repro.runtime.config import ExperimentConfig
from repro.runtime.runner import run_deployment
from tests.conftest import fast_config


def _failover_config(**overrides):
    defaults = dict(
        setup="gossip", n=7, rate=40, warmup=0.6, duration=1.4, drain=4.0,
        seed=9,
        crashes=((0, 1.0, None),),       # coordinator dies mid-workload
        failover_timeout=0.4,
        retransmit_timeout=0.4,
    )
    defaults.update(overrides)
    return fast_config(**defaults)


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(setup="baseline", failover_timeout=0.5)
    with pytest.raises(ValueError):
        ExperimentConfig(protocol="raft", failover_timeout=0.5)
    with pytest.raises(ValueError):
        ExperimentConfig(spaxos=True, failover_timeout=0.5)


def test_backup_takes_over_after_coordinator_crash():
    deployment, report = run_deployment(_failover_config())
    takeovers = [p for p in deployment.processes if p.takeovers > 0]
    assert takeovers, "no backup took over"
    new_coordinator = takeovers[0]
    assert new_coordinator.process_id != 0
    assert new_coordinator.coordinator is not None
    assert new_coordinator.coordinator.phase1_complete
    assert new_coordinator.coordinator.round > 1


def test_progress_resumes_after_failover():
    """Values submitted after the takeover are ordered."""
    deployment, report = run_deployment(_failover_config())
    # Every live client eventually orders values again: decisions exist
    # beyond what the dead coordinator could have proposed by t=1.0.
    live = [p for p in deployment.processes if p.process_id != 0]
    decided_counts = [len(p.learner.decided) for p in live]
    assert max(decided_counts) > 40 * 1.0 * 0.8  # > pre-crash workload


def test_no_failover_without_silence():
    """A healthy coordinator never gets preempted."""
    config = _failover_config(crashes=())
    deployment, report = run_deployment(config)
    assert all(p.takeovers == 0 for p in deployment.processes)
    assert report.not_ordered == 0


def test_safety_across_failover():
    """All processes deliver the same gap-free sequence: the round change
    never decides two values for one instance."""
    deployment, _ = run_deployment(_failover_config())
    logs = []
    for process in deployment.processes[1:]:  # 0 is crashed
        decided = process.learner.decided
        logs.append([(i, decided[i].value_id) for i in sorted(decided)])
    reference = max(logs, key=len)
    for log in logs:
        prefix = min(len(log), len(reference))
        assert log[:prefix] == reference[:prefix]


def test_in_flight_values_reproposed():
    """Values forwarded just before the crash are decided by the new
    coordinator (possibly duplicated — never lost)."""
    deployment, report = run_deployment(_failover_config())
    # Clients of live processes keep their loss bounded to the outage
    # window: the vast majority of their submissions get ordered.
    live_clients = [c for c in deployment.clients if c.client_id != 0]
    for client in live_clients:
        assert client.own_decided >= 0.7 * client.submitted


def test_staggered_ranks_prefer_lowest_backup():
    deployment, _ = run_deployment(_failover_config(seed=11))
    takeovers = sorted(p.process_id for p in deployment.processes
                       if p.takeovers > 0)
    # The rank-1 process (id 1) should be among the first to take over.
    assert takeovers[0] == 1


def test_crash_of_already_failed_over_coordinator():
    """The takeover coordinator dies too; a third process takes over.

    The second failover must start from the *new* round space — the
    surviving processes observed the first takeover's round, so the third
    coordinator's round must exceed both.
    """
    deployment, report = run_deployment(_failover_config(
        crashes=((0, 1.0, None), (1, 2.0, None)),
        duration=2.2, drain=5.0,
    ))
    survivors = [p for p in deployment.processes if p.process_id > 1]
    second = [p for p in survivors if p.takeovers > 0]
    assert second, "no third coordinator emerged after the second crash"
    first_round = deployment.processes[1].coordinator.round
    active = [p for p in second if p.coordinator is not None]
    assert active
    assert all(p.coordinator.round > first_round for p in active)
    # Progress resumed after the second failover as well.
    decided = max(len(p.learner.decided) for p in survivors)
    assert decided > 40 * 2.0 * 0.5


def test_coordinator_crash_at_t0_before_any_decision():
    """The coordinator dies at t=0, before Phase 1 ever completes.

    A backup must bootstrap consensus from nothing: no decisions exist,
    no instance was ever started, and the learners' state is empty when
    the takeover fires.
    """
    deployment, report = run_deployment(_failover_config(
        crashes=((0, 0.0, None),),
    ))
    assert len(deployment.processes[0].learner.decided) == 0
    takeovers = [p for p in deployment.processes if p.takeovers > 0]
    assert takeovers, "no backup bootstrapped the crashed-at-birth cluster"
    new_coordinator = takeovers[0]
    assert new_coordinator.coordinator.phase1_complete
    # The new coordinator starts at the very first instance (1) and the
    # decided sequence is gap-free from there.
    decided = new_coordinator.learner.decided
    assert decided, "no value was ever ordered"
    assert min(decided) == 1
    assert sorted(decided) == list(range(1, len(decided) + 1))
    # Live clients still get the vast majority of their values ordered.
    live_clients = [c for c in deployment.clients if c.client_id != 0]
    for client in live_clients:
        assert client.own_decided >= 0.7 * client.submitted
