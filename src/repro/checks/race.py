"""Double-run determinism race harness (``repro check --race``).

The simulator promises *same seed → same run*. The one thing that promise
cannot see from inside a single interpreter is sensitivity to *push
order*: a run that iterates a hash-ordered container while scheduling
same-timestamp events is perfectly deterministic under one
``PYTHONHASHSEED`` and silently different under another — the PR 4
tie-break hazard class.

This harness makes that sensitivity a testable property. A committed
scenario is executed twice (or more) in fresh ``spawn`` subprocesses,
each under a different ``PYTHONHASHSEED``, with a
:class:`~repro.checks.auditor.RaceAuditor` armed. Each run reports its
exact result fingerprint, a rolling digest of its execution trace, and
per-stream RNG draw counts. If any alternate run diverges from the base
run, the pair is re-executed with full trace capture and the harness
localizes the **first divergent event**, reporting:

* the event's virtual time, sequence number, callback label and argument
  signature on both sides;
* the same-timestamp **tie group** the event belongs to, each member
  tagged with its slot provenance (reserved vs push-ordered, and the
  event that scheduled it);
* which named RNG **streams** had already diverged in cumulative draw
  count by that point — localizing stream-discipline leaks separately
  from tie-break leaks.

Scenario names are the committed perf figure scenarios plus the
regression configs (``agg_heavy``) — see :data:`race_scenarios` — and
``synthetic-tiebreak``, a toy run with a deliberately planted set-ordered
scheduling loop. The synthetic scenario exists to prove the detector
works (its audit MUST fail); it is excluded from ``--race all``.
"""

import hashlib
import multiprocessing
import os
import traceback

from repro.checks.auditor import RaceAuditor

#: Hash seed of the base run; 0 disables str-hash randomization, making
#: the base run the canonical ordering.
BASE_HASH_SEED = 0

#: Hash seeds the base run is compared against. Two alternates keep the
#: probability of a real hazard hiding behind a coincidentally identical
#: set order negligible without tripling CI cost on the clean path.
ALTERNATE_HASH_SEEDS = (1, 2)

#: Name of the deliberately racy toy scenario (never part of "all").
SYNTHETIC = "synthetic-tiebreak"


def race_scenarios():
    """Names accepted by :func:`race_check`, in sorted order.

    The committed figure scenarios and regression configs audit clean;
    ``synthetic-tiebreak`` is the planted-hazard fixture and is excluded
    from ``--race all`` (it exists to *fail*).
    """
    from repro.perf.scenarios import (PERF_SCENARIOS, REGRESSION_SCENARIOS,
                                      SCENARIOS)

    names = (sorted(SCENARIOS) + sorted(REGRESSION_SCENARIOS)
             + sorted(PERF_SCENARIOS))
    return names + [SYNTHETIC]


def _scenario_config(name):
    from repro.perf.scenarios import (PERF_SCENARIOS, REGRESSION_SCENARIOS,
                                      SCENARIOS)

    factory = (SCENARIOS.get(name) or REGRESSION_SCENARIOS.get(name)
               or PERF_SCENARIOS.get(name))
    if factory is None:
        raise KeyError("unknown race scenario {!r}; known: {}".format(
            name, ", ".join(race_scenarios())))
    return factory()


def _auditor_payload(auditor, fingerprint):
    """What one traced run sends back to the comparing parent."""
    payload = {
        "fingerprint": fingerprint,
        "summary": auditor.summary(),
        "hash_seed_env": os.environ.get("PYTHONHASHSEED"),
    }
    if auditor.capture:
        payload["trace"] = auditor.trace()
        # Index tie groups by the hex time of their instant so the parent
        # can attach slot provenance to whichever event diverged first.
        payload["tie_index"] = {
            (g.time.hex() if isinstance(g.time, float) else repr(g.time)):
                g.to_dict()
            for g in auditor.tie_groups()
        }
    return payload


def _run_synthetic(capture):
    """The planted PR 4-class hazard, in miniature.

    A pump event iterates a *set of string node ids* and schedules one
    same-timestamp delivery per id; each delivery draws once from a named
    stream and logs ``(id, draw)``. The per-id draw therefore depends on
    set iteration order — under a different ``PYTHONHASHSEED`` the same
    seed yields a different log, which is exactly the class of silent
    divergence the harness must catch.
    """
    from repro.sim.kernel import Simulator

    auditor = RaceAuditor(capture=capture)
    sim = Simulator(seed=1, auditor=auditor)
    members = {"node-{:02d}".format(i) for i in range(12)}
    log = []

    def deliver(node_id):
        log.append((node_id, sim.rng("toy-payload").random()))

    def pump():
        # The hazard: push order of these same-timestamp events is
        # whatever order the set yields under this interpreter's hash
        # seed. (Deliberate; this scenario exists to be caught.)
        for node_id in members:
            sim.schedule(0.05, deliver, node_id)

    # Single event at t=0: no tie to break (and this fixture is the
    # planted hazard the race harness must catch anyway).
    sim.schedule(0.0, pump)  # repro: allow-unreserved-tie
    sim.run()
    digest = hashlib.sha256(repr(log).encode("utf-8")).hexdigest()
    return _auditor_payload(auditor, digest)


def _traced_run(name, capture):
    """Execute one scenario under the auditor; returns the payload.

    A ``NAME:obs`` suffix runs the scenario with the deterministic tracer
    armed (default :class:`~repro.obs.ObsConfig`) and extends the compared
    fingerprint with the obs trace digest, so a hash-seed-sensitive
    iteration *inside the tracer or exporters* diverges the race check
    even when the model run itself stays clean.
    """
    if name == SYNTHETIC:
        return _run_synthetic(capture)
    from repro.analysis.fingerprint import report_fingerprint

    base_name, _, variant = name.partition(":")
    auditor = RaceAuditor(capture=capture)
    if variant == "obs":
        from repro.obs import ObsConfig, trace_digest
        from repro.runtime.runner import run_deployment

        deployment, report = run_deployment(
            _scenario_config(base_name), auditor=auditor, obs=ObsConfig())
        fingerprint = "{}+obs:{}".format(report_fingerprint(report),
                                         trace_digest(deployment.obs))
    elif variant:
        raise KeyError("unknown scenario variant {!r} (only :obs)".format(
            variant))
    else:
        from repro.runtime.runner import run_experiment

        report = run_experiment(_scenario_config(base_name), auditor=auditor)
        fingerprint = report_fingerprint(report)
    return _auditor_payload(auditor, fingerprint)


def _child_main(conn, name, capture):
    """Subprocess body; ships the payload (or a traceback) to the parent.

    Top-level so the ``spawn`` start method can import it by name.
    """
    try:
        conn.send(("ok", _traced_run(name, capture)))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _run_with_hash_seed(name, hash_seed, capture=False):
    """One traced run in a fresh interpreter under ``hash_seed``.

    ``PYTHONHASHSEED`` only takes effect at interpreter startup, so the
    run happens in a ``spawn`` child that inherits the env var; the
    parent's value is restored immediately after the child launches.
    """
    context = multiprocessing.get_context("spawn")
    receiver, sender = context.Pipe(duplex=False)
    saved = os.environ.get("PYTHONHASHSEED")
    os.environ["PYTHONHASHSEED"] = str(hash_seed)
    try:
        worker = context.Process(target=_child_main,
                                 args=(sender, name, capture))
        worker.start()
    finally:
        if saved is None:
            del os.environ["PYTHONHASHSEED"]
        else:
            os.environ["PYTHONHASHSEED"] = saved
    sender.close()
    try:
        status, payload = receiver.recv()
    except EOFError:
        worker.join()
        raise RuntimeError(
            "race worker for {!r} (PYTHONHASHSEED={}) died with exit code "
            "{}".format(name, hash_seed, worker.exitcode))
    finally:
        receiver.close()
    worker.join()
    if status == "error":
        raise RuntimeError(
            "race worker for {!r} (PYTHONHASHSEED={}) failed:\n{}".format(
                name, hash_seed, payload))
    return payload


def _entry_dict(entry):
    time_hex, seq, label, args_sig, reserved, deltas = entry
    return {
        "time": time_hex,
        "seq": seq,
        "label": label,
        "args": args_sig,
        "reserved": reserved,
        # Deltas are snapshotted when an event is popped, so they count
        # the draws made since the previous pop — i.e. by the *previous*
        # event's callback (and by setup code for the first entry).
        "rng_draws_since_prev": {name: delta for name, delta in deltas},
    }


def _cumulative_draws(trace, upto):
    """Per-stream cumulative draw counts over ``trace[:upto + 1]``."""
    totals = {}
    for entry in trace[:upto + 1]:
        for name, delta in entry[5]:
            totals[name] = totals.get(name, 0) + delta
    return totals


def _localize(name, base_seed, other_seed):
    """Re-run a divergent pair with capture and diff for the first event."""
    left = _run_with_hash_seed(name, base_seed, capture=True)
    right = _run_with_hash_seed(name, other_seed, capture=True)
    left_trace, right_trace = left["trace"], right["trace"]
    shared = min(len(left_trace), len(right_trace))
    index = next(
        (i for i in range(shared) if left_trace[i] != right_trace[i]),
        None)
    if index is None:
        if len(left_trace) == len(right_trace):
            # Digests differed but traces agree: the divergence is outside
            # the event order (e.g. fingerprint-only). Report index -1.
            return {"index": -1, "note": "traces equal; result "
                    "fingerprints differ — divergence is in report "
                    "content, not event order"}
        index = shared
    left_entry = left_trace[index] if index < len(left_trace) else None
    right_entry = right_trace[index] if index < len(right_trace) else None
    anchor = left_entry or right_entry
    time_hex = anchor[0]
    left_draws = _cumulative_draws(left_trace, index)
    right_draws = _cumulative_draws(right_trace, index)
    streams = sorted(
        set(left_draws) | set(right_draws))
    diverged_streams = [
        s for s in streams if left_draws.get(s, 0) != right_draws.get(s, 0)]
    return {
        "index": index,
        "time": time_hex,
        "time_s": float.fromhex(time_hex) if "0x" in time_hex else None,
        "left": _entry_dict(left_entry) if left_entry else None,
        "right": _entry_dict(right_entry) if right_entry else None,
        "tie_group": left.get("tie_index", {}).get(time_hex)
        or right.get("tie_index", {}).get(time_hex),
        "rng_streams_diverged": diverged_streams,
        "rng_draws_at_divergence": {"left": left_draws,
                                    "right": right_draws},
    }


def race_check(name, hash_seeds=None):
    """Audit one scenario for hash-seed/push-order sensitivity.

    Runs the scenario under :data:`BASE_HASH_SEED` and each alternate
    seed (stopping at the first divergence), in fresh interpreters.
    Returns a JSON-ready report dict; ``report["ok"]`` is False when any
    paired run diverged, in which case ``report["divergence"]`` holds the
    first divergent event with tie-group and RNG-stream provenance.
    """
    seeds = list(hash_seeds) if hash_seeds else (
        [BASE_HASH_SEED] + list(ALTERNATE_HASH_SEEDS))
    base_seed, alternates = seeds[0], seeds[1:]
    base = _run_with_hash_seed(name, base_seed)
    runs = {str(base_seed): _run_summary(base)}
    seeds_run = [base_seed]
    divergent_seed = None
    for seed in alternates:
        other = _run_with_hash_seed(name, seed)
        seeds_run.append(seed)
        runs[str(seed)] = _run_summary(other)
        if (other["fingerprint"] != base["fingerprint"]
                or other["summary"]["trace_digest"]
                != base["summary"]["trace_digest"]):
            divergent_seed = seed
            break
    report = {
        "scenario": name,
        "ok": divergent_seed is None,
        "hash_seeds": seeds_run,
        "runs": runs,
        "divergence": None,
    }
    if divergent_seed is not None:
        report["divergence"] = _localize(name, base_seed, divergent_seed)
        report["divergence"]["hash_seeds"] = [base_seed, divergent_seed]
    return report


def _run_summary(payload):
    summary = payload["summary"]
    return {
        "fingerprint": payload["fingerprint"],
        "trace_digest": summary["trace_digest"],
        "events_executed": summary["events_executed"],
        "rng_draws": summary["rng_draws"],
        "tie_groups": summary["tie_groups"],
        "hazard_groups": summary["hazard_groups"],
        "reserved_slots": summary["reserved_slots"],
        "hash_seed_env": payload["hash_seed_env"],
    }


def race_check_many(names, hash_seeds=None):
    """Run :func:`race_check` over several scenarios; list of reports."""
    return [race_check(name, hash_seeds=hash_seeds) for name in names]
