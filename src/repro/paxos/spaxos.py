"""S-Paxos-style dissemination/ordering separation (paper §5.1).

The paper's related-work analysis singles out S-Paxos (Biely et al.) as "a
good candidate for a gossip-based implementation, where values are
inherently disseminated to all processes, while the proposed semantic
techniques can be adopted to improve the ordering layer". This module
implements that variant:

* client values are *disseminated* by their origin process as ordinary
  gossip broadcasts (every process ends up holding the body);
* the coordinator *orders* value ids only: Phase 2a and Decision messages
  carry a tiny :class:`ValueRef` instead of the 1 KB body;
* delivery of a decided instance waits until the instance's value body has
  arrived through the dissemination layer (in total order — a missing body
  blocks later instances exactly like a missing decision).

Everything else — acceptors, learners, semantic filtering/aggregation —
is inherited unchanged, which is the point: the ordering layer's traffic
shrinks while the dissemination layer already was a gossip broadcast.
"""

from collections import deque

from repro.paxos.messages import HEADER_BYTES, ClientValue, Value
from repro.paxos.process import PaxosProcess


class ValueRef(Value):
    """A value placeholder carrying identity only (proposed/decided)."""

    #: Wire size of a reference: id + checksum, no body.
    REF_BYTES = 24

    def __init__(self, value_id):
        super().__init__(value_id, client_id=None,
                         size_bytes=ValueRef.REF_BYTES)


class SPaxosProcess(PaxosProcess):
    """Paxos process with S-Paxos-style id-only ordering."""

    def __init__(self, *args, **kwargs):
        #: value_id -> Value body, filled by the dissemination layer.
        self._bodies = {}
        #: decided (instance, ref) pairs awaiting their body, in order.
        self._undelivered = deque()
        # The inherited delivery callback is wrapped by body resolution;
        # initialised before super().__init__ because the parent assigns
        # self.on_deliver (through the property setter below).
        self._downstream_deliver = None
        super().__init__(*args, **kwargs)

    # PaxosProcess reads self.on_deliver dynamically; interpose a property
    # so decided refs funnel through body resolution before the client.
    @property
    def on_deliver(self):
        return self._resolve_and_deliver if self._downstream_deliver else None

    @on_deliver.setter
    def on_deliver(self, callback):
        self._downstream_deliver = callback

    # -- client path --------------------------------------------------------

    def submit_value(self, value):
        """Disseminate the body; ordering happens via its reference."""
        if not self.alive:
            return
        self.stats.values_submitted += 1
        self._bodies[value.value_id] = value
        if self.coordinator is not None:
            self.coordinator.on_client_value(ValueRef(value.value_id),
                                             self.now)
        self.stats.values_forwarded += 1
        # One broadcast serves both dissemination (everyone stores the
        # body) and coordinator notification (it proposes the ref).
        self.comm.broadcast(ClientValue(value, self.process_id))

    # -- message handling -----------------------------------------------------

    def handle(self, payload):
        if not self.alive:
            return
        if type(payload) is ClientValue:
            self.stats.messages_handled += 1
            value = payload.value
            if value.value_id not in self._bodies:
                self._bodies[value.value_id] = value
                self._drain_undelivered()
            if self.coordinator is not None:
                self.coordinator.on_client_value(ValueRef(value.value_id),
                                                 self.now)
            return
        super().handle(payload)

    # -- delivery with body resolution -------------------------------------------

    def _resolve_and_deliver(self, instance, ref):
        self._undelivered.append((instance, ref))
        self._drain_undelivered()

    def _drain_undelivered(self):
        callback = self._downstream_deliver
        while self._undelivered:
            instance, ref = self._undelivered[0]
            body = self._bodies.get(ref.value_id)
            if body is None:
                return  # body still in flight; later instances must wait
            self._undelivered.popleft()
            if callback is not None:
                callback(instance, body)

    @property
    def bodies_pending(self):
        """Decided instances blocked on a missing value body."""
        return len(self._undelivered)


def reference_overhead_bytes():
    """Wire size of an ordered instance's control data (2a header + ref)."""
    return HEADER_BYTES + ValueRef.REF_BYTES
