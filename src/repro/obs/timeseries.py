"""Windowed time series sampled by a virtual-time ticker.

The :class:`TimelineSampler` schedules one tick at every multiple of
``ObsConfig.tick_interval`` up to the run horizon and records, per
bucket, the *deltas* of cumulative counters it reads from the live
deployment — throughput curves, in-flight count, per-region link
utilization, retransmissions, CPU utilization and membership/fault
state. Partition windows and election storms thereby become curves
instead of one end-of-run number.

Inertness: tick instants are ``k * tick_interval`` (multiplication, not
accumulated addition, so float error cannot drift the grid), each tick
is a fresh kernel event appended *after* any same-instant model events
already in the heap, and the callbacks only read. The counter reads go
through the same lazily-draining ``stats`` properties the end-of-run
report uses — draining is pure bookkeeping, so observing mid-run changes
nothing the model can see.
"""

from repro.runtime.metrics import mean


def _cumulative_retransmissions(processes):
    """Mirror of build_report's retransmission summing, read mid-run."""
    total = 0
    for process in processes:
        coordinator = getattr(process, "coordinator", None)
        if coordinator is not None:
            total += coordinator.retransmissions
        process_stats = getattr(process, "stats", None)
        if process_stats is not None:
            total += getattr(process_stats, "retransmissions", 0)
    return total


class TimelineSampler:
    """Fixed-width virtual-time buckets over a running deployment.

    ``series`` is column-oriented: ``{"t": [...], "submitted": [...], ...}``
    with one entry per completed bucket; bucket ``i`` covers the interval
    ``(t[i] - tick_interval, t[i]]``. Per-region link columns are keyed
    ``"link_util:<region>"`` in sorted region order (fixed at install, so
    every run of a config emits identical columns).
    """

    def __init__(self, deployment, tracer):
        self.deployment = deployment
        self.tracer = tracer
        self.interval = tracer.obs_config.tick_interval
        self.horizon = deployment.config.end_of_run
        self._tick_index = 0
        # src-region name per directed link, grouped once at install; the
        # link set is fixed at build time except for membership's lazily
        # connected join edges, which we re-scan for on each tick.
        self._regions = sorted(
            {deployment.topology.region_name(i)
             for i in range(deployment.config.n)})
        self._links_by_region = {region: [] for region in self._regions}
        self._known_links = 0
        self._scan_links()
        self.series = {"t": [], "submitted": [], "decided": [],
                       "delivered": [], "in_flight": [],
                       "retransmissions": [], "cpu_utilization_mean": [],
                       "link_util_total": [], "alive": [],
                       "partition_active": []}
        for region in self._regions:
            self.series["link_util:" + region] = []
        # Previous-tick cumulative readings, for per-bucket deltas.
        self._prev = {
            "submitted": 0, "decided": 0, "delivered": 0,
            "retransmissions": 0, "cpu_busy": 0.0,
            "link_busy": {region: 0.0 for region in self._regions},
        }

    def _scan_links(self):
        """Group any not-yet-seen directed links by their source region."""
        transports = self.deployment.transports
        total = sum(len(transport.links()) for transport in transports)
        if total == self._known_links:
            return
        topology = self.deployment.topology
        by_region = {region: [] for region in self._regions}
        for transport in transports:
            for link in transport.links():
                by_region[topology.region_name(link.src)].append(link)
        self._links_by_region = by_region
        self._known_links = total

    def start(self):
        """Arm the ticker; called by Tracer.install before the run."""
        self._schedule_next()

    def _schedule_next(self):
        self._tick_index += 1
        t = self._tick_index * self.interval
        if t > self.horizon:
            return
        # A fresh event gets the next tie-break seq, so a tick landing on
        # a model-event instant runs after everything already scheduled
        # there — it observes, never preempts.
        self.deployment.sim.schedule_at(t, self._tick)

    def _tick(self):
        self._sample(self._tick_index * self.interval)
        self._schedule_next()

    def _sample(self, t):
        deployment = self.deployment
        tracer = self.tracer
        interval = self.interval
        prev = self._prev
        series = self.series

        series["t"].append(t)
        for key, cumulative in (
            ("submitted", tracer.submitted_total),
            ("decided", tracer.decided_total),
            ("delivered", tracer.delivered_total),
        ):
            series[key].append(cumulative - prev[key])
            prev[key] = cumulative
        series["in_flight"].append(
            tracer.submitted_total - tracer.delivered_total)

        retrans = _cumulative_retransmissions(deployment.processes)
        series["retransmissions"].append(retrans - prev["retransmissions"])
        prev["retransmissions"] = retrans

        cpu_busy = sum(node.cpu.stats.busy_time for node in deployment.nodes)
        busy_delta = cpu_busy - prev["cpu_busy"]
        prev["cpu_busy"] = cpu_busy
        n = len(deployment.nodes)
        series["cpu_utilization_mean"].append(
            busy_delta / (interval * n) if n else 0.0)

        # Per-region link utilization: serialisation-time deltas estimated
        # from the links' cost model — sum of per-link busy fractions by
        # source region (can exceed 1.0: a region has many links).
        self._scan_links()
        total_util = 0.0
        for region in self._regions:
            busy = 0.0
            for link in self._links_by_region[region]:
                link_stats = link.stats
                config = link.config
                busy += (link_stats.sent * config.per_message_s
                         + link_stats.bytes_sent * config.per_byte_s)
            util = (busy - prev["link_busy"][region]) / interval
            prev["link_busy"][region] = busy
            series["link_util:" + region].append(util)
            total_util += util
        series["link_util_total"].append(total_util)

        membership = deployment.membership
        if membership is not None:
            alive = len(membership.view.alive_members())
        else:
            alive = deployment.config.n
        series["alive"].append(alive)

        engine = deployment.fault_engine
        active = 0
        if engine is not None:
            for start, heal in engine.stats.partition_windows():
                if start <= t and (heal is None or heal > t):
                    active += 1
        series["partition_active"].append(active)

    # -- post-run views -----------------------------------------------------

    def rows(self):
        """Per-bucket dicts (one per tick), for exporters."""
        series = self.series
        keys = sorted(series.keys())
        count = len(series["t"])
        return [{key: series[key][i] for key in keys} for i in range(count)]

    def summary(self):
        """Headline aggregates over the whole timeline."""
        series = self.series
        if not series["t"]:
            return {}
        interval = self.interval
        throughput = [d / interval for d in series["delivered"]]
        return {
            "ticks": len(series["t"]),
            "tick_interval_s": interval,
            "peak_throughput": max(throughput),
            "mean_throughput": mean(throughput),
            "peak_in_flight": max(series["in_flight"]),
            "retransmissions": sum(series["retransmissions"]),
            "min_alive": min(series["alive"]),
            "partition_ticks": sum(
                1 for active in series["partition_active"] if active),
        }
