"""Unit tests for the dynamic :class:`RaceAuditor`."""

import pytest

from repro.checks.auditor import (
    RaceAuditor,
    SETUP_ORIGIN,
    args_signature,
    callback_label,
)
from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator
from repro.sim.random import CountingStream, make_stream


def _noop(*_args):
    pass


# -- attachment ------------------------------------------------------------

def test_unattached_simulator_uses_plain_machinery():
    sim = Simulator(seed=3, queue="heap")
    assert type(sim._queue) is EventQueue
    assert sim._stream_factory is make_stream
    assert type(sim.rng("a")) is not CountingStream


def test_attached_simulator_counts_draws_without_changing_them():
    plain = Simulator(seed=3)
    audited = Simulator(seed=3, auditor=RaceAuditor())
    draws_plain = [plain.rng("s").random() for _ in range(5)]
    draws_audited = [audited.rng("s").random() for _ in range(5)]
    assert draws_plain == draws_audited          # bit-identical sequences
    assert audited.rng("s").draws == 5


def test_auditor_is_single_run():
    auditor = RaceAuditor()
    Simulator(seed=1, auditor=auditor)
    with pytest.raises(RuntimeError):
        Simulator(seed=2, auditor=auditor)


# -- tie groups ------------------------------------------------------------

def test_same_timestamp_events_form_a_hazard_group():
    auditor = RaceAuditor()
    sim = Simulator(seed=0, auditor=auditor)
    sim.schedule(1.0, _noop, "a")
    sim.schedule(1.0, _noop, "b")
    sim.schedule(2.0, _noop, "c")            # alone at its instant: no group
    groups = auditor.tie_groups()
    assert len(groups) == 1
    group = groups[0]
    assert group.time == 1.0
    assert [m.args_sig for m in group.members] == ["'a'", "'b'"]
    assert all(m.origin == SETUP_ORIGIN for m in group.members)
    assert group.is_hazard()                 # two push-ordered members
    assert auditor.group_at(2.0) is not None
    assert not auditor.group_at(2.0).is_hazard()


def test_reserved_slots_defuse_the_hazard():
    auditor = RaceAuditor()
    sim = Simulator(seed=0, auditor=auditor)
    slot = sim.reserve_slot()
    sim.schedule(1.0, _noop, "pushed")
    sim.schedule_at_reserved(1.0, slot, _noop, "reserved")
    (group,) = auditor.tie_groups()
    by_sig = {m.args_sig: m for m in group.members}
    assert by_sig["'reserved'"].reserved
    assert not by_sig["'pushed'"].reserved
    assert not group.is_hazard()             # only one push-ordered member
    assert auditor.summary()["reserved_slots"] == 1


def test_origin_is_the_scheduling_events_exec_index():
    auditor = RaceAuditor()
    sim = Simulator(seed=0, auditor=auditor)

    def chain():
        sim.schedule(1.0, _noop, "x")
        sim.schedule(1.0, _noop, "y")

    sim.schedule(0.5, chain)
    sim.run()
    group = auditor.group_at(1.5)
    # chain executed as event #0, so both members carry origin 0.
    assert [m.origin for m in group.members] == [0, 0]


# -- trace / digest --------------------------------------------------------

def _pair_run(seed, flip=False, capture=False):
    auditor = RaceAuditor(capture=capture)
    sim = Simulator(seed=seed, auditor=auditor)

    def draw(name):
        sim.rng("payload").random()
        _noop(name)

    names = ["b", "a"] if flip else ["a", "b"]
    for offset, name in enumerate(names):
        sim.schedule(0.1 * (offset + 1), draw, name)
    sim.run()
    return auditor


def test_identical_runs_have_identical_digests():
    assert _pair_run(7).digest() == _pair_run(7).digest()


def test_digest_is_sensitive_to_event_order():
    assert _pair_run(7).digest() != _pair_run(7, flip=True).digest()


def test_capture_retains_trace_without_changing_digest():
    silent, captured = _pair_run(7), _pair_run(7, capture=True)
    assert silent.trace() == []
    assert len(captured.trace()) == 2
    assert silent.digest() == captured.digest()


def test_trace_entries_attribute_rng_draws_to_previous_event():
    auditor = _pair_run(7, capture=True)
    first, second = auditor.trace()
    # Deltas are snapshotted at pop: the first entry predates any callback,
    # the second sees the draw made by the first event's callback.
    assert first[5] == ()
    assert second[5] == (("payload", 1),)
    assert auditor.rng_draws() == {"payload": 2}


def test_summary_shape():
    auditor = _pair_run(7)
    summary = auditor.summary()
    assert summary["events_recorded"] == 2
    assert summary["events_executed"] == 2
    assert summary["tie_groups"] == 0
    assert summary["hazard_groups"] == 0
    assert summary["trace_digest"] == auditor.digest()


# -- address-free labelling ------------------------------------------------

def test_args_signature_is_address_free():
    class Payload:
        pass

    sig = args_signature((1, "x", 0.5, None, True, Payload()))
    assert sig == "1,'x',{},None,True,Payload".format((0.5).hex())
    assert "0x7f" not in sig.lower() or "0x1.0" in sig


def test_callback_label_uses_qualname():
    assert callback_label(_noop) == "_noop"

    class Holder:
        def method(self):
            pass

    assert "Holder.method" in callback_label(Holder().method)
