"""Text and JSON reporters for lint findings and invariant violations.

The text form is the classic one-diagnostic-per-line compiler format
(``path:line:col: rule-id message``) so editors and CI annotators can parse
it; the JSON form is a stable machine-readable envelope used by
``repro check --json``.
"""

import json


def format_findings_text(findings):
    """Human-readable lint report; empty string when clean."""
    if not findings:
        return ""
    lines = [
        "{}:{}:{}: {} {}".format(
            finding.path, finding.line, finding.col + 1,
            finding.rule_id, finding.message,
        )
        for finding in findings
    ]
    lines.append("{} finding{} ({} rule{})".format(
        len(findings), "s" if len(findings) != 1 else "",
        len({f.rule_id for f in findings}),
        "s" if len({f.rule_id for f in findings}) != 1 else "",
    ))
    return "\n".join(lines)


def format_violations_text(violations):
    """Human-readable invariant report; empty string when clean."""
    if not violations:
        return ""
    lines = [
        "[{}] {}".format(violation.invariant, violation.message)
        for violation in violations
    ]
    lines.append("{} violation{}".format(
        len(violations), "s" if len(violations) != 1 else ""))
    return "\n".join(lines)


def report_to_json(findings=None, violations=None, extra=None):
    """The ``repro check --json`` envelope as a serialized string."""
    payload = {
        "clean": not findings and not violations,
    }
    if findings is not None:
        payload["lint"] = {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        }
    if violations is not None:
        payload["invariants"] = {
            "violations": [violation.to_dict() for violation in violations],
            "count": len(violations),
        }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
