"""Result analysis and paper-style rendering."""

from repro.analysis.stats import cdf_points, summarize
from repro.analysis.tables import format_table, format_heatmap

__all__ = ["cdf_points", "summarize", "format_table", "format_heatmap"]
