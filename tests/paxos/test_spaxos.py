"""Tests for the S-Paxos-style dissemination/ordering separation."""

import pytest

from repro.paxos.messages import HEADER_BYTES
from repro.paxos.spaxos import SPaxosProcess, ValueRef
from repro.runtime.config import ExperimentConfig
from repro.runtime.runner import run_deployment, run_experiment
from tests.conftest import fast_config


def _wire_bytes(deployment):
    return sum(
        link.stats.bytes_sent
        for transport in deployment.transports
        for link in transport._links.values()
    )


def test_value_ref_is_tiny():
    ref = ValueRef(("c", 0))
    assert ref.size_bytes == ValueRef.REF_BYTES
    assert ref.value_id == ("c", 0)


def test_config_rejects_spaxos_on_baseline():
    with pytest.raises(ValueError):
        ExperimentConfig(setup="baseline", spaxos=True)


def test_config_rejects_spaxos_with_raft():
    with pytest.raises(ValueError):
        ExperimentConfig(protocol="raft", spaxos=True)


def test_deployment_uses_spaxos_processes():
    deployment, _ = run_deployment(fast_config(setup="gossip", spaxos=True))
    assert all(type(p) is SPaxosProcess for p in deployment.processes)


def test_all_values_ordered():
    report = run_experiment(fast_config(setup="gossip", spaxos=True))
    assert report.not_ordered == 0
    assert report.decided == report.submitted


def test_total_order_preserved():
    deployment, _ = run_deployment(fast_config(setup="gossip", spaxos=True,
                                               n=7))
    reference = None
    for process in deployment.processes:
        decided = process.learner.decided
        log = [(i, decided[i].value_id) for i in sorted(decided)]
        if reference is None:
            reference = log
        prefix = min(len(log), len(reference))
        assert log[:prefix] == reference[:prefix]
    assert reference


def test_ordering_messages_carry_refs_not_bodies():
    """Phase 2a / Decision sizes shrink to header + reference."""
    deployment, _ = run_deployment(fast_config(setup="gossip", spaxos=True))
    coordinator = deployment.processes[0]
    decided = coordinator.learner.decided
    assert decided
    for value in decided.values():
        assert isinstance(value, ValueRef)
        assert value.size_bytes == ValueRef.REF_BYTES


def test_clients_receive_real_bodies():
    """Delivery resolves refs back to the disseminated bodies: clients
    match decisions by client_id, which only the original bodies carry."""
    deployment, _ = run_deployment(fast_config(setup="gossip", spaxos=True))
    for client in deployment.clients:
        assert client.own_decided > 0


def test_bytes_on_wire_reduced():
    base_dep, base = run_deployment(fast_config(setup="gossip", rate=60))
    sp_dep, spaxos = run_deployment(fast_config(setup="gossip", rate=60,
                                                spaxos=True))
    assert spaxos.not_ordered == 0
    assert _wire_bytes(sp_dep) < 0.7 * _wire_bytes(base_dep)


def test_composes_with_semantic_gossip():
    report = run_experiment(fast_config(setup="semantic", spaxos=True,
                                        rate=60))
    assert report.not_ordered == 0
    assert report.messages.filtered > 0


def test_missing_body_blocks_delivery_in_order():
    """Unit-level: a decided ref without its body parks delivery, and the
    body's late arrival releases the ordered prefix."""
    from repro.paxos.messages import Value
    from repro.sim.kernel import Simulator

    class NullComm:
        def broadcast(self, payload):
            pass

        def to_coordinator(self, payload):
            pass

        def phase2b(self, payload):
            pass

    sim = Simulator(seed=0)
    delivered = []
    process = SPaxosProcess(sim, 1, 3, NullComm())
    process.on_deliver = lambda i, v: delivered.append((i, v.value_id))

    # Simulate two decided instances arriving before any body.
    process._resolve_and_deliver(1, ValueRef("a"))
    process._resolve_and_deliver(2, ValueRef("b"))
    assert delivered == []
    assert process.bodies_pending == 2

    # Body for instance 2 alone does not unblock instance 1.
    process._bodies["b"] = Value("b", 0, 10)
    process._drain_undelivered()
    assert delivered == []

    # Body for instance 1 releases both, in order.
    process._bodies["a"] = Value("a", 0, 10)
    process._drain_undelivered()
    assert delivered == [(1, "a"), (2, "b")]
    assert process.bodies_pending == 0


def test_reference_overhead_constant():
    from repro.paxos.spaxos import reference_overhead_bytes

    assert reference_overhead_bytes() == HEADER_BYTES + ValueRef.REF_BYTES
