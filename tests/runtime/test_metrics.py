"""Tests for metrics collection and report mathematics."""

import pytest

from repro.runtime.metrics import (
    MetricsCollector,
    mean,
    percentile,
    stddev,
)


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0


def test_stddev():
    assert stddev([2.0, 4.0]) == pytest.approx(1.4142, abs=1e-3)
    assert stddev([5.0]) == 0.0
    assert stddev([]) == 0.0


def test_percentile_interpolates():
    xs = [0.0, 10.0]
    assert percentile(xs, 0) == 0.0
    assert percentile(xs, 100) == 10.0
    assert percentile(xs, 50) == 5.0


def test_percentile_edge_cases():
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 99) == 7.0


def test_percentile_monotone():
    xs = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
    values = [percentile(xs, p) for p in range(0, 101, 5)]
    assert values == sorted(values)


def test_collector_records_lifecycle():
    collector = MetricsCollector()
    collector.record_submit("v1", client_id=3, now=1.0)
    collector.record_decided("v1", now=1.5)
    (record,) = collector.records()
    assert record.client_id == 3
    assert record.submitted_at == 1.0
    assert record.decided_at == 1.5


def test_collector_first_decision_wins():
    collector = MetricsCollector()
    collector.record_submit("v1", 0, 1.0)
    collector.record_decided("v1", 2.0)
    collector.record_decided("v1", 9.0)
    (record,) = collector.records()
    assert record.decided_at == 2.0


def test_collector_ignores_unknown_value():
    collector = MetricsCollector()
    collector.record_decided("ghost", 1.0)  # no crash
    assert list(collector.records()) == []


def test_undecided_record_has_none():
    collector = MetricsCollector()
    collector.record_submit("v1", 0, 1.0)
    (record,) = collector.records()
    assert record.decided_at is None
