"""Extension bench — S-Paxos-style id-only ordering over gossip (§5.1).

The paper's related work singles out S-Paxos as a natural fit for gossip:
values are disseminated to everyone anyway, so the ordering layer can
carry ids only. This bench measures what that buys on the wire: bytes
drop (bodies travel once instead of riding on Phase 2a and Decision),
while message counts and latency stay comparable — and the semantic
techniques compose with it.
"""

from benchmarks.conftest import SCALE, bench_config, save_results
from repro.analysis.tables import format_table
from repro.runtime.runner import run_deployment

PLAN = {
    "quick": dict(n=13, rate=100, values=80),
    "paper": dict(n=53, rate=100, values=120),
}

VARIANTS = (
    ("gossip", dict()),
    ("gossip+spaxos", dict(spaxos=True)),
    ("semantic", dict()),
    ("semantic+spaxos", dict(spaxos=True)),
)


def _wire_bytes(deployment):
    return sum(
        link.stats.bytes_sent
        for transport in deployment.transports
        for link in transport._links.values()
    )


def run_spaxos_matrix():
    plan = PLAN[SCALE]
    results = {}
    for name, overrides in VARIANTS:
        setup = name.split("+")[0]
        config = bench_config(setup, plan["n"], plan["rate"],
                              plan["values"], **overrides)
        deployment, report = run_deployment(config)
        results[name] = (report, _wire_bytes(deployment))
    return results


def test_ext_spaxos(benchmark):
    results = benchmark.pedantic(run_spaxos_matrix, rounds=1, iterations=1)
    plan = PLAN[SCALE]

    rows = []
    data = {}
    for name, _ in VARIANTS:
        report, wire_bytes = results[name]
        rows.append([
            name,
            "{:.0f}".format(report.avg_latency_s * 1000),
            "{:.0f}".format(report.throughput),
            report.messages.received_total,
            "{:.1f}".format(wire_bytes / 1e6),
            report.not_ordered,
        ])
        data[name] = {
            "avg_latency_ms": report.avg_latency_s * 1000,
            "received_total": report.messages.received_total,
            "wire_mb": wire_bytes / 1e6,
            "not_ordered": report.not_ordered,
        }

    print()
    print(format_table(
        ["variant", "avg ms", "thr /s", "msgs recv", "MB on wire",
         "not ordered"],
        rows,
        title="Extension: S-Paxos id-only ordering (n={}, {}/s)".format(
            plan["n"], plan["rate"]),
    ))

    save_results("ext_spaxos", {"scale": SCALE, "data": data})

    assert data["gossip+spaxos"]["wire_mb"] < 0.7 * data["gossip"]["wire_mb"]
    assert (data["semantic+spaxos"]["wire_mb"]
            < 0.7 * data["semantic"]["wire_mb"])
    # Composition keeps all orderings intact.
    assert all(entry["not_ordered"] == 0 for entry in data.values())
